"""Thread-local dense accumulator arenas for privatized scatter-add.

The seed COO-Mttkrp-OMP privatized its output *per chunk*: every chunk of
a dynamic schedule allocated a fresh dense ``(I_mode, R)`` buffer and the
final reduction summed one buffer per chunk — O(nchunks) full-size
allocations plus an O(nchunks) serial dense reduction, traffic the paper's
OpenMP kernels do not have.  Real privatized kernels (and the dense
workspaces of Kjolstad et al., arXiv 1802.10574) privatize *per thread*:
each worker owns one arena that it reuses across every chunk it executes,
and the final reduction is a fixed ``nthreads``-way tree.

:class:`WorkspacePool` implements that shape for the thread-pool backends:
``acquire()`` hands the calling thread its arena (allocating it zeroed on
first touch), ``reduce_into(out)`` folds the arenas into the shared output
with a pairwise tree, and ``reset()`` re-zeroes the arenas so a pool cached
on the backend can be checked out again without reallocating.

The hard invariant the per-chunk scheme violated: a pool never holds more
than ``max_arenas`` (= the backend's thread count) buffers, regardless of
how many chunks the schedule produces.
"""

from __future__ import annotations

import threading

import numpy as np


class WorkspacePool:
    """Per-thread reusable dense accumulators for one privatized loop.

    Parameters
    ----------
    shape, dtype:
        Geometry of the shared output being privatized.
    max_arenas:
        Upper bound on distinct arenas — the executing backend's thread
        count.  ``acquire`` raises if a loop somehow touches more threads,
        because that is exactly the unbounded-memory bug this class exists
        to prevent.
    """

    __slots__ = ("shape", "dtype", "max_arenas", "_arenas", "_lock")

    def __init__(self, shape, dtype, max_arenas: int = 1):
        self.shape = tuple(int(s) for s in shape)
        self.dtype = np.dtype(dtype)
        self.max_arenas = max(1, int(max_arenas))
        self._arenas: dict[int, np.ndarray] = {}
        self._lock = threading.Lock()

    @property
    def narenas(self) -> int:
        """Distinct arenas allocated so far (<= ``max_arenas``)."""
        return len(self._arenas)

    def acquire(self) -> np.ndarray:
        """The calling thread's arena, allocated zeroed on first touch.

        Subsequent chunks executed by the same thread get the *same* buffer
        back, so their updates accumulate without any per-chunk allocation.
        """
        tid = threading.get_ident()
        buf = self._arenas.get(tid)
        if buf is None:
            buf = np.zeros(self.shape, dtype=self.dtype)
            with self._lock:
                self._arenas[tid] = buf
                if len(self._arenas) > self.max_arenas:
                    raise RuntimeError(
                        f"WorkspacePool invariant violated: {len(self._arenas)} "
                        f"arenas for max_arenas={self.max_arenas}"
                    )
        return buf

    def reduce_into(self, out: np.ndarray) -> None:
        """Fold every arena into ``out`` with a pairwise reduction tree.

        The fan-in is bounded by ``max_arenas`` (not the chunk count), so
        the reduction cost is fixed per loop.  Arenas are consumed by the
        tree; call :meth:`reset` before reusing the pool.
        """
        bufs = list(self._arenas.values())
        while len(bufs) > 1:
            nxt = []
            for i in range(0, len(bufs) - 1, 2):
                bufs[i] += bufs[i + 1]
                nxt.append(bufs[i])
            if len(bufs) % 2:
                nxt.append(bufs[-1])
            bufs = nxt
        if bufs:
            out += bufs[0]

    def reset(self) -> None:
        """Zero every arena so the pool can back another loop."""
        for buf in self._arenas.values():
            buf[...] = 0
