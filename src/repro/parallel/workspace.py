"""Thread-local dense accumulator arenas for privatized scatter-add.

The seed COO-Mttkrp-OMP privatized its output *per chunk*: every chunk of
a dynamic schedule allocated a fresh dense ``(I_mode, R)`` buffer and the
final reduction summed one buffer per chunk — O(nchunks) full-size
allocations plus an O(nchunks) serial dense reduction, traffic the paper's
OpenMP kernels do not have.  Real privatized kernels (and the dense
workspaces of Kjolstad et al., arXiv 1802.10574) privatize *per worker*:
each worker owns one arena that it reuses across every chunk it executes,
and the final reduction is a fixed ``nthreads``-way tree.

:class:`WorkspacePool` implements that shape for the thread-pool backends:
``acquire()`` hands the calling worker its arena (allocating it zeroed on
first touch), ``reduce_into(out)`` folds the arenas into the shared output
with a pairwise tree, and ``reset()`` re-zeroes the arenas so a pool cached
on the backend can be checked out again without reallocating.

Worker identity
---------------
Arenas are keyed by the backend *worker slot*
(:func:`repro.parallel.slots.current_slot`) when the caller runs inside a
backend-executed chunk, falling back to ``threading.get_ident()`` for
direct callers.  Slot keying is what keeps a pool cached across backend
lifecycles correct: OS thread idents churn when an executor is recycled
(``OpenMPBackend.shutdown()`` + reuse) or when workers die mid-run, and an
ident-keyed pool silently accumulated one stale arena per departed worker
until ``acquire()`` blew the ``max_arenas`` invariant.  Slots are bounded
by construction; leftover ident-keyed arenas of *dead* threads are adopted
(data preserved — the reduction is additive) instead of leaked.

The hard invariant the per-chunk scheme violated: a pool never holds more
than ``max_arenas`` (= the backend's thread count) buffers, regardless of
how many chunks the schedule produces or how many OS threads come and go.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.obs.tracer import current_tracer
from repro.parallel.slots import current_slot


class WorkspacePool:
    """Per-worker reusable dense accumulators for one privatized loop.

    Parameters
    ----------
    shape, dtype:
        Geometry of the shared output being privatized.
    max_arenas:
        Upper bound on distinct arenas — the executing backend's thread
        count.  ``acquire`` raises if a loop somehow touches more live
        workers, because that is exactly the unbounded-memory bug this
        class exists to prevent.

    Lifecycle discipline (enforced): ``acquire()``\\* → ``reduce_into()``
    once → ``reset()``.  A second ``reduce_into`` before ``reset`` raises
    instead of silently double-counting the arenas the first reduction
    consumed.
    """

    __slots__ = ("shape", "dtype", "max_arenas", "_arenas", "_lock", "_consumed")

    def __init__(self, shape, dtype, max_arenas: int = 1):
        self.shape = tuple(int(s) for s in shape)
        self.dtype = np.dtype(dtype)
        self.max_arenas = max(1, int(max_arenas))
        self._arenas: dict[tuple, np.ndarray] = {}
        self._lock = threading.Lock()
        self._consumed = False

    @property
    def narenas(self) -> int:
        """Distinct arenas allocated so far (<= ``max_arenas``)."""
        return len(self._arenas)

    def _key(self) -> tuple:
        """The calling worker's arena key: backend slot if inside a chunk,
        OS thread ident otherwise."""
        slot = current_slot()
        if slot is not None:
            return ("slot", int(slot))
        return ("tid", threading.get_ident())

    def _adopt_departed(self) -> "np.ndarray | None":
        """Reclaim the arena of a dead thread (lock held by caller).

        Only ident-keyed arenas can go stale — slot keys are bounded by the
        backend.  The adopted buffer keeps its contents: the pending
        reduction is additive, so the departed worker's partial sums still
        reach the output through its successor.
        """
        alive = {t.ident for t in threading.enumerate()}
        for key in list(self._arenas):
            if key[0] == "tid" and key[1] not in alive:
                return self._arenas.pop(key)
        return None

    def acquire(self) -> np.ndarray:
        """The calling worker's arena, allocated zeroed on first touch.

        Subsequent chunks executed by the same worker slot get the *same*
        buffer back, so their updates accumulate without any per-chunk
        allocation.
        """
        key = self._key()
        tracer = current_tracer()
        allocated = False
        with self._lock:
            if self._consumed:
                raise RuntimeError(
                    "WorkspacePool.acquire() after reduce_into(); call "
                    "reset() before reusing the pool"
                )
            buf = self._arenas.get(key)
            if buf is None:
                if len(self._arenas) >= self.max_arenas:
                    buf = self._adopt_departed()
                if buf is None:
                    if len(self._arenas) >= self.max_arenas:
                        raise RuntimeError(
                            f"WorkspacePool invariant violated: "
                            f"{len(self._arenas) + 1} arenas for "
                            f"max_arenas={self.max_arenas}"
                        )
                    buf = np.zeros(self.shape, dtype=self.dtype)
                    allocated = True
                self._arenas[key] = buf
        if tracer.enabled:
            tracer.count("ws.acquire")
            if allocated:
                tracer.count("ws.arena_alloc")
            tracer.gauge("ws.arena_bytes", buf.nbytes)
        return buf

    def reduce_into(self, out: np.ndarray) -> None:
        """Fold every arena into ``out`` with a pairwise reduction tree.

        The fan-in is bounded by ``max_arenas`` (not the chunk count), so
        the reduction cost is fixed per loop.  Arenas are consumed by the
        tree; the pool refuses a second reduction (which would silently
        double-count) until :meth:`reset`.
        """
        with self._lock:
            if self._consumed:
                raise RuntimeError(
                    "WorkspacePool.reduce_into() called twice without "
                    "reset(); the first reduction consumed the arenas"
                )
            self._consumed = True
            bufs = list(self._arenas.values())
        tracer = current_tracer()
        if tracer.enabled:
            tracer.count("ws.reduce")
            tracer.count("ws.reduce_arenas", len(bufs))
        while len(bufs) > 1:
            nxt = []
            for i in range(0, len(bufs) - 1, 2):
                bufs[i] += bufs[i + 1]
                nxt.append(bufs[i])
            if len(bufs) % 2:
                nxt.append(bufs[-1])
            bufs = nxt
        if bufs:
            out += bufs[0]

    def reset(self) -> None:
        """Zero every arena so the pool can back another loop."""
        with self._lock:
            self._consumed = False
            bufs = list(self._arenas.values())
        tracer = current_tracer()
        if tracer.enabled:
            tracer.count("ws.reset")
        for buf in bufs:
            buf[...] = 0
