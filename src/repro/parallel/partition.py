"""Work partitioners and load-balance metrics.

COO kernels parallelize over non-zeros (uniform cost), Ttv/Ttm over fibers
(cost = fiber length), and HiCOO kernels over blocks (cost = block nnz).
The partitioners here turn those irregular work distributions into chunk
ranges, and the imbalance metrics feed both Observation 4's analysis and
the simulated-GPU cost model.
"""

from __future__ import annotations

import numpy as np


def validate_chunk(chunk: "int | None") -> "int | None":
    """Validate an explicit chunk size; ``None`` means "use the default".

    An explicit ``chunk=0`` is rejected rather than silently coerced to the
    backend default (the old ``chunk or default`` idiom discarded it).
    """
    if chunk is None:
        return None
    c = int(chunk)
    if c < 1:
        raise ValueError(f"chunk must be >= 1 when given, got {chunk!r}")
    return c


def plan_ranges(
    total: int,
    schedule,
    chunk: "int | None",
    nthreads: int,
    default_chunk: int,
) -> list[tuple[int, int]]:
    """The OpenMP-style chunk decomposition shared by every backend that
    mirrors ``#pragma omp parallel for schedule(...)``.

    * ``static``  — one near-equal chunk per thread, unless an explicit
      chunk size is given;
    * ``dynamic`` — fixed chunks of ``chunk`` (default ``default_chunk``);
    * ``guided``  — decaying chunks floored at ``chunk``/``default_chunk``.

    Exposed as a function so the race-check and chaos backends replay the
    *identical* decomposition the executing backend would run.
    """
    from repro.types import Schedule

    schedule = Schedule.coerce(schedule)
    chunk = validate_chunk(chunk)
    if total <= 0:
        return []
    if schedule is Schedule.STATIC:
        return (
            fixed_chunks(total, chunk)
            if chunk is not None
            else chunk_ranges(total, nthreads)
        )
    if schedule is Schedule.DYNAMIC:
        return fixed_chunks(total, chunk if chunk is not None else default_chunk)
    # GUIDED: floor at the default chunk (OpenMP's guided floors at the
    # chunk argument too); min_chunk=1 would degenerate into a long tail
    # of 1-element chunks once remaining/nthreads < 1.
    return guided_chunks(
        total, nthreads, min_chunk=chunk if chunk is not None else default_chunk
    )


def chunk_ranges(total: int, nchunks: int) -> list[tuple[int, int]]:
    """Split ``[0, total)`` into at most ``nchunks`` near-equal ranges."""
    if total <= 0:
        return []
    nchunks = max(1, min(nchunks, total))
    bounds = np.linspace(0, total, nchunks + 1).astype(np.int64)
    return [
        (int(bounds[i]), int(bounds[i + 1]))
        for i in range(nchunks)
        if bounds[i + 1] > bounds[i]
    ]


def fixed_chunks(total: int, chunk: int) -> list[tuple[int, int]]:
    """Split ``[0, total)`` into ranges of ``chunk`` items (last may be short)."""
    if total <= 0:
        return []
    chunk = max(1, int(chunk))
    return [(lo, min(lo + chunk, total)) for lo in range(0, total, chunk)]


def guided_chunks(total: int, nworkers: int, min_chunk: int = 1) -> list[tuple[int, int]]:
    """OpenMP ``guided`` schedule: chunk = remaining / nworkers, decreasing."""
    out: list[tuple[int, int]] = []
    lo = 0
    while lo < total:
        size = max(min_chunk, (total - lo) // max(1, nworkers))
        hi = min(total, lo + size)
        out.append((lo, hi))
        lo = hi
    return out


def balanced_partition(weights: np.ndarray, nparts: int) -> list[tuple[int, int]]:
    """Split items with per-item ``weights`` into contiguous ranges whose
    total weights are as even as a prefix-sum greedy split can make them.

    Used to balance fiber-parallel Ttv/Ttm by non-zeros instead of fiber
    count (the mitigation for the imbalance the paper calls out).
    """
    n = len(weights)
    if n == 0:
        return []
    nparts = max(1, min(nparts, n))
    csum = np.concatenate(([0], np.cumsum(weights, dtype=np.float64)))
    total = csum[-1]
    if total <= 0:
        return chunk_ranges(n, nparts)
    targets = np.linspace(0, total, nparts + 1)[1:-1]
    cuts = np.searchsorted(csum[1:-1], targets) + 1
    bounds = np.unique(np.concatenate(([0], cuts, [n])))
    return [(int(bounds[i]), int(bounds[i + 1])) for i in range(len(bounds) - 1)]


def load_imbalance(work: np.ndarray) -> float:
    """``max(work) / mean(work)`` — the classic imbalance factor (>= 1)."""
    work = np.asarray(work, dtype=np.float64)
    if work.size == 0:
        return 1.0
    mean = work.mean()
    return float(work.max() / mean) if mean > 0 else 1.0


def makespan(costs: np.ndarray, nworkers: int) -> float:
    """LPT (longest-processing-time) list-scheduling makespan of ``costs``
    onto ``nworkers`` identical workers.

    Exact greedy simulation for modest task counts; for huge counts the
    tight LPT bound ``max(max_cost, total / nworkers)`` is returned (the
    greedy result converges to it as tasks shrink relative to the total).
    """
    costs = np.asarray(costs, dtype=np.float64)
    if costs.size == 0 or nworkers <= 0:
        return 0.0
    if nworkers == 1:
        return float(costs.sum())
    if costs.size <= 65536:
        import heapq

        order = np.sort(costs)[::-1]
        heap = [0.0] * nworkers
        for c in order:
            t = heapq.heappop(heap)
            heapq.heappush(heap, t + float(c))
        return float(max(heap))
    return float(max(costs.max(), costs.sum() / nworkers))
