"""Atomic scatter-add emulation and contention statistics.

COO-Mttkrp-OMP protects its output matrix with ``omp atomic`` (and the GPU
variant with ``atomicAdd``).  In NumPy the race-free equivalent is
``np.add.at`` (unbuffered scatter-add); we wrap it so kernels state their
intent, and we expose contention statistics — how many updates collide on
the same output row — because that is the quantity the paper's GPU
discussion (Observation 2/4) ties to Mttkrp throughput.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def atomic_add_rows(out: np.ndarray, rows: np.ndarray, contrib: np.ndarray) -> None:
    """``out[rows[k], :] += contrib[k, :]`` safely under duplicate rows."""
    np.add.at(out, rows, contrib)


def sorted_reduce_rows(
    out: np.ndarray, rows: np.ndarray, contrib: np.ndarray
) -> None:
    """Race-free alternative to atomics: sort updates by target row and
    reduce each segment once (the "lock-avoiding" strategy the paper cites
    as the tuned alternative; used by the Mttkrp ablation benchmark)."""
    if len(rows) == 0:
        return
    order = np.argsort(rows, kind="stable")
    r = rows[order]
    c = contrib[order]
    starts = np.concatenate(([0], np.flatnonzero(np.diff(r)) + 1))
    sums = np.add.reduceat(c, starts, axis=0)
    out[r[starts]] += sums


@dataclass(frozen=True)
class ContentionStats:
    """How contended a scatter-add's target rows are."""

    n_updates: int
    n_targets: int
    max_per_target: int
    mean_per_target: float

    @property
    def conflict_factor(self) -> float:
        """Average updates per touched target; 1.0 means race-free."""
        return self.mean_per_target


def contention_stats(rows: np.ndarray, n_out: int | None = None) -> ContentionStats:
    """Histogram the scatter targets to quantify atomic contention."""
    rows = np.asarray(rows)
    if rows.size == 0:
        return ContentionStats(0, 0, 0, 0.0)
    counts = np.bincount(rows.astype(np.int64), minlength=n_out or 0)
    counts = counts[counts > 0]
    return ContentionStats(
        n_updates=int(rows.size),
        n_targets=int(counts.size),
        max_per_target=int(counts.max()),
        mean_per_target=float(counts.mean()),
    )
