"""Execution backend abstraction for the CPU kernels.

The paper's CPU kernels are OpenMP ``parallel for`` loops over non-zeros,
fibers, or blocks, with static/dynamic scheduling.  We reproduce that
structure: a :class:`Backend` provides ``parallel_for(total, body)`` where
``body(lo, hi)`` processes a contiguous range.  Kernels vectorize each
range with NumPy, so a multi-threaded backend gets genuine parallelism
(NumPy releases the GIL inside ufuncs) while the sequential backend runs
the identical decomposition in one thread — results are bit-identical by
construction for race-free kernels.
"""

from __future__ import annotations

import abc
import contextlib
import threading
from typing import Callable

import numpy as np

from repro.types import Schedule
from repro.obs.tracer import CAT_CHUNK, CAT_REGION, current_tracer
from repro.parallel.workspace import WorkspacePool

#: A loop body processing the half-open index range [lo, hi).
RangeBody = Callable[[int, int], None]

_REGISTRY: dict[str, "Backend"] = {}

#: Guards the lazy creation of per-backend workspace caches.
_WS_INIT_LOCK = threading.Lock()


class Backend(abc.ABC):
    """Strategy object executing chunked parallel-for loops."""

    #: Logical worker count (1 for sequential).
    nthreads: int = 1

    #: Whether the compiled execution tier may run under this backend.
    #: Correctness backends (race-check, chaos) flip this off: their
    #: checks replay the *chunked* decomposition, which the compiled
    #: tier's fused/JIT loops do not go through.
    supports_compiled: bool = True

    #: Pool class used by :meth:`workspace`; an extension point so the
    #: correctness harness can substitute instrumented pools.
    workspace_cls = WorkspacePool

    @property
    def is_threaded(self) -> bool:
        """Whether kernels should use their multi-worker update strategy
        (privatized arenas etc.) under this backend.

        The race-check backend overrides this to ``True`` even though it
        executes chunks sequentially, so it replays — and checks — the
        decomposition the threaded kernels actually run.
        """
        return self.nthreads > 1

    @contextlib.contextmanager
    def check_output(self, out, access="atomic"):
        """Declare ``out`` as the shared output of the enclosed parallel
        region, written under the given access contract.

        ``access`` is an output-access contract kind (see
        :mod:`repro.kernels.contract`): ``"atomic"`` (overlapping writes
        mediated by a commutative reduction), ``"owner"`` (chunks own
        disjoint output ranges), ``"workspace"`` (chunks write only
        thread-private arenas, never ``out``), or ``"disjoint"`` (chunks
        write disjoint elements by construction).

        A no-op for executing backends — zero overhead on the hot path.
        ``RaceCheckBackend`` overrides it to record per-chunk write
        footprints on ``out`` and flag contract violations.
        """
        yield

    @abc.abstractmethod
    def parallel_for(
        self,
        total: int,
        body: RangeBody,
        schedule: "Schedule | str" = Schedule.STATIC,
        chunk: int | None = None,
    ) -> None:
        """Execute ``body`` over ``[0, total)`` split into chunks."""

    def map_ranges(self, ranges, body: RangeBody) -> None:
        """Execute ``body`` over explicit (lo, hi) ranges (fiber partitions)."""
        tracer = current_tracer()
        if tracer.enabled:
            ranges = list(ranges)
            with tracer.span(
                "map_ranges", cat=CAT_REGION, backend=self.name,
                schedule="explicit", nchunks=len(ranges),
                nthreads=self.nthreads,
            ):
                for lo, hi in ranges:
                    with tracer.span(
                        "chunk", cat=CAT_CHUNK, backend=self.name,
                        schedule="explicit", lo=lo, hi=hi,
                    ):
                        body(lo, hi)
            return
        for lo, hi in ranges:
            body(lo, hi)

    @contextlib.contextmanager
    def workspace(self, shape, dtype):
        """Check out a zeroed :class:`WorkspacePool` sized to this backend.

        Pools are cached per ``(shape, dtype)`` on the backend, so repeated
        kernel calls (e.g. the Mttkrps of a CP-ALS sweep) reuse the same
        thread-local arenas instead of reallocating them; the pool is
        re-zeroed when checked back in.  Concurrent checkouts of the same
        geometry get distinct pools, so nested/overlapping kernel calls
        never alias arenas.
        """
        try:
            cache = self._ws_cache
            lock = self._ws_lock
        except AttributeError:
            # First checkout may race from two threads; guard the lazy
            # init so both see one cache and one lock.
            with _WS_INIT_LOCK:
                if not hasattr(self, "_ws_cache"):
                    self._ws_cache = {}
                    self._ws_lock = threading.Lock()
            cache = self._ws_cache
            lock = self._ws_lock
        key = (tuple(int(s) for s in shape), np.dtype(dtype).str)
        with lock:
            free = cache.setdefault(key, [])
            pool = free.pop() if free else self.workspace_cls(shape, dtype, self.nthreads)
        try:
            yield pool
        finally:
            pool.reset()
            with lock:
                cache[key].append(pool)

    @property
    def name(self) -> str:
        return type(self).__name__


def register_backend(key: str, backend: "Backend") -> None:
    """Register a backend instance under a lookup key."""
    _REGISTRY[key.lower()] = backend


def get_backend(spec: "Backend | str | None" = None) -> "Backend":
    """Resolve a backend from an instance, registry key, or default.

    ``None`` resolves to the sequential backend; ``"openmp"`` and
    ``"seq"``/``"sequential"`` are always registered.
    """
    if spec is None:
        return _REGISTRY["sequential"]
    if isinstance(spec, Backend):
        return spec
    key = str(spec).lower()
    if key not in _REGISTRY:
        raise KeyError(
            f"unknown backend {spec!r}; registered: {sorted(_REGISTRY)}"
        )
    return _REGISTRY[key]
