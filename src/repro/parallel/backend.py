"""Execution backend abstraction for the CPU kernels.

The paper's CPU kernels are OpenMP ``parallel for`` loops over non-zeros,
fibers, or blocks, with static/dynamic scheduling.  We reproduce that
structure: a :class:`Backend` provides ``parallel_for(total, body)`` where
``body(lo, hi)`` processes a contiguous range.  Kernels vectorize each
range with NumPy, so a multi-threaded backend gets genuine parallelism
(NumPy releases the GIL inside ufuncs) while the sequential backend runs
the identical decomposition in one thread — results are bit-identical by
construction for race-free kernels.
"""

from __future__ import annotations

import abc
from typing import Callable

from repro.types import Schedule

#: A loop body processing the half-open index range [lo, hi).
RangeBody = Callable[[int, int], None]

_REGISTRY: dict[str, "Backend"] = {}


class Backend(abc.ABC):
    """Strategy object executing chunked parallel-for loops."""

    #: Logical worker count (1 for sequential).
    nthreads: int = 1

    @abc.abstractmethod
    def parallel_for(
        self,
        total: int,
        body: RangeBody,
        schedule: "Schedule | str" = Schedule.STATIC,
        chunk: int | None = None,
    ) -> None:
        """Execute ``body`` over ``[0, total)`` split into chunks."""

    def map_ranges(self, ranges, body: RangeBody) -> None:
        """Execute ``body`` over explicit (lo, hi) ranges (fiber partitions)."""
        for lo, hi in ranges:
            body(lo, hi)

    @property
    def name(self) -> str:
        return type(self).__name__


def register_backend(key: str, backend: "Backend") -> None:
    """Register a backend instance under a lookup key."""
    _REGISTRY[key.lower()] = backend


def get_backend(spec: "Backend | str | None" = None) -> "Backend":
    """Resolve a backend from an instance, registry key, or default.

    ``None`` resolves to the sequential backend; ``"openmp"`` and
    ``"seq"``/``"sequential"`` are always registered.
    """
    if spec is None:
        return _REGISTRY["sequential"]
    if isinstance(spec, Backend):
        return spec
    key = str(spec).lower()
    if key not in _REGISTRY:
        raise KeyError(
            f"unknown backend {spec!r}; registered: {sorted(_REGISTRY)}"
        )
    return _REGISTRY[key]
