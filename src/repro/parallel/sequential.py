"""Single-threaded backend — the reference executor.

Runs the same chunk decomposition as the OpenMP-like backend but in the
calling thread, so kernels behave identically whether or not threads are
available (important on single-core CI machines).
"""

from __future__ import annotations

from repro.types import Schedule
from repro.obs.tracer import CAT_CHUNK, CAT_REGION, current_tracer
from repro.parallel.backend import Backend, RangeBody
from repro.parallel.partition import (
    chunk_ranges,
    fixed_chunks,
    guided_chunks,
    validate_chunk,
)


class SequentialBackend(Backend):
    """Executes chunks in order in the calling thread."""

    nthreads = 1

    def __init__(self, chunks_hint: int = 1):
        #: How many chunks to cut loops into even though execution is
        #: serial; >1 exercises the same code paths as threaded runs.
        self.chunks_hint = max(1, int(chunks_hint))

    def parallel_for(
        self,
        total: int,
        body: RangeBody,
        schedule: "Schedule | str" = Schedule.STATIC,
        chunk: int | None = None,
    ) -> None:
        schedule = Schedule.coerce(schedule)
        chunk = validate_chunk(chunk)
        if chunk is not None:
            ranges = fixed_chunks(total, chunk)
        elif schedule is Schedule.GUIDED:
            ranges = guided_chunks(total, self.chunks_hint)
        else:
            ranges = chunk_ranges(total, self.chunks_hint)
        tracer = current_tracer()
        if tracer.enabled:
            with tracer.span(
                "parallel_for", cat=CAT_REGION, backend="sequential",
                schedule=schedule.value, nchunks=len(ranges), nthreads=1,
            ):
                for lo, hi in ranges:
                    with tracer.span(
                        "chunk", cat=CAT_CHUNK, backend="sequential",
                        schedule=schedule.value, lo=lo, hi=hi,
                    ):
                        body(lo, hi)
            return
        for lo, hi in ranges:
            body(lo, hi)
