"""Chaos backend: seeded adversarial scheduling for the thread-pool paths.

Correct parallel kernels must not care *which* worker runs a chunk, in
what order chunks complete, or whether the OS recycles worker threads
mid-run.  :class:`ChaosBackend` wraps :class:`~repro.parallel.openmp.
OpenMPBackend` and makes those freedoms adversarial — deterministically,
from a seed — so tests can pin down bugs that real schedulers only
surface once in a thousand runs:

* **Shuffled completion order** — the planned chunks execute one at a
  time in a seeded random permutation, so any hidden dependency on chunk
  order (e.g. a reduction that assumes ascending ranges) breaks
  reproducibly.
* **Worker churn** — a seeded fraction of chunks run on a *fresh*
  ``threading.Thread`` instead of the executor.  Churned threads stay
  parked (alive) until the region ends, which guarantees their OS thread
  idents are all distinct — exactly the situation that leaked arenas out
  of an ident-keyed ``WorkspacePool`` after executor recycling, and the
  regression trap that keeps it fixed (slot-keyed pools are indifferent
  to churn; ident-keyed pools blow their ``max_arenas`` bound here,
  deterministically).
* **Injected chunk failures** — a seeded probability (or an explicit
  chunk-index set) raises :class:`ChaosError` instead of running the
  chunk, exercising the error path: remaining chunks are skipped
  (mirroring the executor's cancellation) and the failure of the earliest
  chunk in *chunk order* is raised.

Chunks execute one at a time, so data races cannot corrupt results here —
that is :class:`~repro.parallel.racecheck.RaceCheckBackend`'s job.  Chaos
targets *lifetime and ordering* bugs: stale caches, order-dependent
reductions, unpropagated errors.
"""

from __future__ import annotations

import random
import threading

from repro.types import Schedule
from repro.obs.tracer import CAT_CHUNK, CAT_REGION, current_tracer
from repro.parallel.backend import Backend, RangeBody
from repro.parallel.openmp import OpenMPBackend


class ChaosError(RuntimeError):
    """An injected chunk failure (never raised by real kernel code)."""


class ChaosBackend(Backend):
    """Adversarial-but-deterministic wrapper around an OpenMP backend.

    Parameters
    ----------
    inner:
        The wrapped :class:`OpenMPBackend` (owns planning and the
        executor).  Defaults to a fresh 4-thread backend.
    seed:
        Seeds every chaotic decision; identical seeds replay identical
        schedules, churn points, and failures.
    shuffle:
        Execute chunks in a seeded random order (default on).
    churn:
        Probability in ``[0, 1]`` that a chunk runs on a fresh, parked
        thread instead of the executor (worker churn).
    failure_rate:
        Probability in ``[0, 1]`` of injecting a :class:`ChaosError`
        instead of running a chunk.
    fail_chunks:
        Explicit chunk indices (in chunk order) to fail, for targeted
        error-path tests; combined with ``failure_rate``.
    """

    #: Chaos perturbs chunk decompositions; the compiled tier has none,
    #: so tier resolution keeps the NumPy tier under this backend.
    supports_compiled = False

    def __init__(
        self,
        inner: "OpenMPBackend | None" = None,
        *,
        seed: int = 0,
        shuffle: bool = True,
        churn: float = 0.0,
        failure_rate: float = 0.0,
        fail_chunks=(),
    ):
        self.inner = inner if inner is not None else OpenMPBackend(nthreads=4)
        if not hasattr(self.inner, "plan"):
            raise TypeError(
                "ChaosBackend needs an inner backend exposing plan() "
                f"(got {type(self.inner).__name__})"
            )
        self.nthreads = self.inner.nthreads
        self.seed = int(seed)
        self.shuffle = bool(shuffle)
        self.churn = float(churn)
        self.failure_rate = float(failure_rate)
        self.fail_chunks = frozenset(int(c) for c in fail_chunks)
        self._rng = random.Random(self.seed)
        self._parked: list[threading.Thread] = []
        self._park = threading.Event()
        #: Total fresh threads spawned by churn (observability for tests).
        self.churned = 0

    @property
    def is_threaded(self) -> bool:
        # Kernels must take their multi-worker paths whenever the inner
        # pool is threaded *or* churn will move chunks across threads.
        return self.inner.nthreads > 1 or self.churn > 0

    def reseed(self, seed: int) -> None:
        """Restart the deterministic chaos stream."""
        self.seed = int(seed)
        self._rng = random.Random(self.seed)

    def drain(self) -> None:
        """Release and join parked churn threads (end-of-region/cleanup)."""
        if not self._parked:
            return
        self._park.set()
        for t in self._parked:
            t.join()
        self._parked.clear()
        self._park = threading.Event()

    def shutdown(self) -> None:
        self.drain()
        self.inner.shutdown()

    def parallel_for(
        self,
        total: int,
        body: RangeBody,
        schedule: "Schedule | str" = Schedule.STATIC,
        chunk: int | None = None,
    ) -> None:
        self._execute(self.inner.plan(total, schedule, chunk), body)

    def map_ranges(self, ranges, body: RangeBody) -> None:
        self._execute(list(ranges), body)

    def _run_churned(self, body: RangeBody, lo: int, hi: int) -> None:
        """Run one chunk on a fresh thread that parks until drain().

        Parking keeps the thread alive, so every churned chunk in a region
        is guaranteed a *distinct* OS thread ident — no reliance on the
        allocator declining to reuse idents of joined threads.
        """
        errbox: list[BaseException] = []
        done = threading.Event()
        park = self._park

        def target() -> None:
            try:
                body(lo, hi)
            except BaseException as exc:  # noqa: BLE001 - relayed below
                errbox.append(exc)
            finally:
                done.set()
                park.wait()

        t = threading.Thread(target=target, name="repro-chaos-churn")
        t.start()
        self._parked.append(t)
        self.churned += 1
        done.wait()
        if errbox:
            raise errbox[0]

    def _execute(self, ranges: list[tuple[int, int]], body: RangeBody) -> None:
        if not ranges:
            return
        order = list(range(len(ranges)))
        if self.shuffle:
            self._rng.shuffle(order)
        # Draw per-chunk fates in *chunk order* so the outcome depends on
        # the seed alone, not on the shuffled execution order.
        fates = [
            (
                self.failure_rate > 0 and self._rng.random() < self.failure_rate,
                self.churn > 0 and self._rng.random() < self.churn,
            )
            for _ in ranges
        ]
        pool = self.inner._ensure_pool() if self.inner.nthreads > 1 else None

        # The process-global tracer propagates into chaos runs, so the
        # adversarial schedule (shuffle order, churned chunks) is
        # inspectable in the exported trace.
        tracer = current_tracer()
        if tracer.enabled:
            inner_body = body

            def body(lo: int, hi: int, _inner=inner_body) -> None:
                with tracer.span(
                    "chunk", cat=CAT_CHUNK, backend="chaos", lo=lo, hi=hi,
                ):
                    _inner(lo, hi)

            region = tracer.span(
                "chaos", cat=CAT_REGION, backend="chaos",
                nchunks=len(ranges), nthreads=self.nthreads,
                seed=self.seed, shuffle=self.shuffle,
            )
            region.__enter__()
        else:
            region = None

        def run_chunk(lo: int, hi: int) -> None:
            with self.inner._slots.lease():
                body(lo, hi)

        errors: dict[int, BaseException] = {}
        try:
            for ci in order:
                lo, hi = ranges[ci]
                fail, churn = fates[ci]
                if fail or ci in self.fail_chunks:
                    errors[ci] = ChaosError(
                        f"injected failure in chunk {ci} [{lo}, {hi})"
                    )
                    # Mirror the executor's cancellation: later chunks in
                    # execution order never start.
                    break
                try:
                    if churn:
                        self._run_churned(run_chunk, lo, hi)
                    elif pool is not None:
                        pool.submit(run_chunk, lo, hi).result()
                    else:
                        run_chunk(lo, hi)
                except BaseException as exc:  # noqa: BLE001 - re-raised below
                    errors[ci] = exc
                    break
        finally:
            self.drain()
            if region is not None:
                region.__exit__(None, None, None)
        if errors:
            raise errors[min(errors)]
