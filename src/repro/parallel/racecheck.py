"""Race-check backend: a write-footprint sanitizer for parallel kernels.

The suite's three scatter-update strategies (arena-privatized, owner-
computes, sort-reduce) are *race-free by construction* — but nothing in the
executing backends can verify the construction.  :class:`RaceCheckBackend`
does: it replays the exact chunk decomposition the OpenMP backend would run
(same planner, same schedules, same chunk floors), executes the chunks one
at a time, and diffs every declared output array around each chunk to
recover the chunk's **write footprint**.  Footprints are then checked
against the kernel's declared output-access contract
(:mod:`repro.kernels.contract`):

``owner`` / ``disjoint``
    No two chunks may write the same output element.  Any write-write
    overlap between different chunks is a race the declared decomposition
    promised away — :class:`RaceViolation`.
``workspace``
    Chunks must not touch the shared output at all: every write belongs in
    a thread-private :class:`~repro.parallel.workspace.WorkspacePool`
    arena, and the output changes only in the post-loop reduction.  Any
    chunk-time write to the output is a violation.
``atomic``
    Overlapping writes are permitted — the contract declares them mediated
    by a commutative reduction (``np.add.at`` standing in for
    ``omp atomic``).  The checker records overlap statistics but does not
    flag.

Because chunks execute sequentially on one thread, the checker is
deterministic: a decomposition either is disjoint or it is not, no
scheduling luck involved.  The diff-based footprint has one blind spot —
a chunk that writes a value *bit-identical* to what was already stored is
invisible — which cannot create false positives, only (measure-zero, for
random data) false negatives.

Validated disciplines follow the dense-workspace formulation of Kjolstad
et al. (arXiv 1802.10574) and the per-mode parallel decompositions of
PASTA (arXiv 1902.03317).
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field

import numpy as np

from repro.types import Schedule
from repro.obs.tracer import CAT_CHUNK, CAT_REGION, current_tracer
from repro.parallel.backend import Backend, RangeBody
from repro.parallel.partition import plan_ranges
from repro.parallel.slots import bound_slot

#: Access kinds the checker understands (mirrors
#: :class:`repro.kernels.contract.Access`; strings to avoid an import
#: cycle with the kernels package).
ACCESS_KINDS = ("atomic", "owner", "workspace", "disjoint")


class RaceViolation(RuntimeError):
    """A chunk decomposition broke its declared output-access contract."""


def _coerce_access(access) -> str:
    kind = str(getattr(access, "value", access)).lower()
    if kind not in ACCESS_KINDS:
        raise ValueError(
            f"unknown output-access contract {access!r}; "
            f"expected one of {ACCESS_KINDS}"
        )
    return kind


def _coords(flat_indices, shape) -> list[tuple[int, ...]]:
    """Human-readable witness coordinates for violation messages."""
    return [
        tuple(int(c) for c in np.unravel_index(int(i), shape))
        for i in flat_indices[:4]
    ]


@dataclass
class RegionReport:
    """What one parallel region did to one declared output."""

    access: str
    shape: tuple
    nchunks: int = 0
    #: Total elements written (counted once per chunk that wrote them).
    writes: int = 0
    #: Elements written by more than one chunk.
    overlaps: int = 0
    #: ``(earlier_chunk, later_chunk, flat_indices)`` overlap witnesses.
    conflicts: list = field(default_factory=list)


class _Watch:
    """One declared output being footprint-tracked."""

    __slots__ = ("array", "access", "report", "owner_of")

    def __init__(self, array: np.ndarray, access: str):
        self.array = array
        self.access = access
        self.report = RegionReport(access=access, shape=array.shape)
        # First-writer map over the flattened output: -1 = untouched.
        self.owner_of = np.full(array.size, -1, dtype=np.int64)

    def record(self, chunk_index: int, written: np.ndarray) -> None:
        if written.size == 0:
            return
        rep = self.report
        rep.writes += int(written.size)
        if self.access == "workspace":
            # Any chunk-time write to the shared output breaks
            # privatization; owner_of doubles as the witness store.
            rep.conflicts.append((-1, chunk_index, written[:8]))
            rep.overlaps += int(written.size)
            return
        prev = self.owner_of[written]
        clash = prev >= 0
        if clash.any():
            rep.overlaps += int(clash.sum())
            if self.access in ("owner", "disjoint"):
                first = int(prev[clash][0])
                rep.conflicts.append(
                    (first, chunk_index, written[clash][:8])
                )
        self.owner_of[written] = chunk_index

    def violation_message(self) -> "str | None":
        rep = self.report
        if not rep.conflicts:
            return None
        if self.access == "workspace":
            _, chunk, idx = rep.conflicts[0]
            coords = _coords(idx, rep.shape)
            return (
                f"workspace contract violated: chunk {chunk} wrote the "
                f"shared output {rep.shape} directly at {coords} "
                f"({rep.overlaps} element(s) total); privatized loops must "
                "write only their WorkspacePool arena"
            )
        a, b, idx = rep.conflicts[0]
        coords = _coords(idx, rep.shape)
        return (
            f"{self.access} contract violated: chunks {a} and {b} both "
            f"wrote output {rep.shape} elements {coords} "
            f"({rep.overlaps} overlapping write(s) across "
            f"{len(rep.conflicts)} chunk pair(s)); the declared "
            "decomposition is not write-disjoint"
        )


class RaceCheckBackend(Backend):
    """Executes kernels under write-footprint checking.

    Drop-in for any ``backend=`` kernel argument: results are exact (the
    real chunk bodies run, in chunk order, on the calling thread), and
    ``is_threaded`` reports ``True`` so kernels take the same multi-worker
    code paths — privatized arenas, owner partitions — they would take
    under :class:`~repro.parallel.openmp.OpenMPBackend` with ``nthreads``
    workers.

    Parameters
    ----------
    nthreads:
        Width of the replayed decomposition (how many chunks a static
        schedule produces, how many owners a partition gets).
    default_chunk:
        Dynamic/guided chunk floor, as on the OpenMP backend.
    strict:
        Raise :class:`RaceViolation` at the end of an offending region
        (default).  ``strict=False`` only records, for harness surveys.

    After every parallel region executed inside a ``check_output`` scope,
    a :class:`RegionReport` is appended to :attr:`history`.
    """

    #: The compiled tier bypasses chunked decompositions, so it would
    #: erase exactly the footprints this backend exists to check; tier
    #: resolution transparently falls back to the NumPy tier here.
    supports_compiled = False

    def __init__(
        self,
        nthreads: int = 4,
        default_chunk: int = 256,
        strict: bool = True,
    ):
        self.nthreads = max(1, int(nthreads))
        self.default_chunk = int(default_chunk)
        self.strict = bool(strict)
        self._watches: list[tuple[np.ndarray, str]] = []
        self.history: list[RegionReport] = []

    @property
    def is_threaded(self) -> bool:
        return True

    def clear_history(self) -> None:
        self.history.clear()

    @contextlib.contextmanager
    def check_output(self, out, access="atomic"):
        decl = (np.asarray(out), _coerce_access(access))
        self._watches.append(decl)
        try:
            yield
        finally:
            self._watches.pop()

    def plan(
        self,
        total: int,
        schedule: "Schedule | str" = Schedule.STATIC,
        chunk: int | None = None,
    ) -> list[tuple[int, int]]:
        """Identical decomposition to ``OpenMPBackend.plan``."""
        return plan_ranges(total, schedule, chunk, self.nthreads, self.default_chunk)

    def parallel_for(
        self,
        total: int,
        body: RangeBody,
        schedule: "Schedule | str" = Schedule.STATIC,
        chunk: int | None = None,
    ) -> None:
        self._run(self.plan(total, schedule, chunk), body)

    def map_ranges(self, ranges, body: RangeBody) -> None:
        self._run(list(ranges), body)

    def _run(self, ranges: list[tuple[int, int]], body: RangeBody) -> None:
        # The installed tracer is inherited (it is process-global), so
        # harness replays are as inspectable as real executions; chunk
        # spans carry the replayed chunk index.
        tracer = current_tracer()
        if tracer.enabled:
            inner = body

            def body(lo: int, hi: int, _inner=inner) -> None:
                with tracer.span(
                    "chunk", cat=CAT_CHUNK, backend="racecheck",
                    lo=lo, hi=hi,
                ):
                    _inner(lo, hi)

            region = tracer.span(
                "racecheck", cat=CAT_REGION, backend="racecheck",
                nchunks=len(ranges), nthreads=self.nthreads,
                checked=bool(self._watches),
            )
        else:
            region = contextlib.nullcontext()
        with region:
            self._run_checked(ranges, body)

    def _run_checked(self, ranges: list[tuple[int, int]], body: RangeBody) -> None:
        if not self._watches:
            # Nothing declared: plain sequential execution (still under a
            # worker slot so arena keying matches the executing backends).
            for lo, hi in ranges:
                with bound_slot(0):
                    body(lo, hi)
            return
        # Footprint state is per parallel *region*: a check_output scope
        # may legally enclose several loops over the same output.
        watches = [_Watch(arr, access) for arr, access in self._watches]
        for watch in watches:
            watch.report.nchunks = len(ranges)
        for ci, (lo, hi) in enumerate(ranges):
            before = [w.array.copy() for w in watches]
            with bound_slot(0):
                body(lo, hi)
            for watch, snap in zip(watches, before):
                changed = np.flatnonzero(
                    (watch.array != snap).ravel()
                )
                watch.record(ci, changed)
        for watch in watches:
            self.history.append(watch.report)
            msg = watch.violation_message()
            if msg is not None and self.strict:
                raise RaceViolation(msg)
