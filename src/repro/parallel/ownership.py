"""Owner-computes output-row partitioning for scatter-add kernels.

The third way to make a scatter-add race-free, next to atomics and
sort-reduce: give each thread exclusive ownership of a contiguous slice of
the *output* rows and hand it exactly the updates that land in its slice.
No privatization, no atomics, no final reduction — the strategy Liu et
al.'s unified GPU optimization (arXiv 1705.09905) builds its conflict-free
Mttkrp around, here as a reusable pre-processing step for the CPU kernels.

:func:`owner_partition` splits ``[0, n_out)`` into at most ``nparts``
contiguous row ranges whose update counts are balanced (prefix-sum greedy,
like :func:`repro.parallel.partition.balanced_partition`), then stably
buckets the update stream by owning range.  Stability is what makes the
result *bit-identical* to the sequential kernel: all updates to a given
output row share one owner, so their relative order — and therefore the
floating-point accumulation order per row — is exactly the sequential
storage order.

For HiCOO, passing ``align=block_size`` snaps the range boundaries to
block multiples so a tensor block is never split between owners (a block's
entries share one block coordinate along the output mode, hence one
owner); block-parallel kernels can then keep whole blocks per thread.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.parallel.partition import balanced_partition


@dataclass(frozen=True)
class OwnerPartition:
    """A conflict-free assignment of scatter updates to output-row owners.

    Attributes
    ----------
    row_bounds:
        ``(nparts + 1,)`` int64; owner ``p`` exclusively writes output rows
        ``[row_bounds[p], row_bounds[p+1])``.
    order:
        ``(M,)`` permutation of the update stream grouping updates by
        owner, stable within each owner (sequential storage order).
    part_ptr:
        ``(nparts + 1,)`` int64 offsets into ``order``; owner ``p``
        processes ``order[part_ptr[p]:part_ptr[p+1]]``.
    """

    row_bounds: np.ndarray
    order: np.ndarray
    part_ptr: np.ndarray

    @property
    def nparts(self) -> int:
        return len(self.part_ptr) - 1

    def entry_ranges(self) -> list[tuple[int, int]]:
        """Per-owner ``(lo, hi)`` ranges into ``order`` (backend-ready)."""
        return [
            (int(self.part_ptr[p]), int(self.part_ptr[p + 1]))
            for p in range(self.nparts)
            if self.part_ptr[p + 1] > self.part_ptr[p]
        ]

    def owned_rows(self) -> Iterator[tuple[int, int]]:
        """Per-owner ``(row_lo, row_hi)`` output slices."""
        for p in range(self.nparts):
            yield int(self.row_bounds[p]), int(self.row_bounds[p + 1])


def owner_partition(
    rows: np.ndarray,
    n_out: int,
    nparts: int,
    align: int = 1,
) -> OwnerPartition:
    """Partition scatter updates targeting ``rows`` among row owners.

    Parameters
    ----------
    rows:
        ``(M,)`` target output row of every update, in storage order.
    n_out:
        Number of output rows.
    nparts:
        Desired owner count (typically the backend's thread count); the
        result may have fewer parts when the update stream is small or
        ``align`` collapses boundaries.
    align:
        Snap interior range boundaries down to multiples of ``align``
        (HiCOO block size) so aligned groups are never split.
    """
    n_out = int(n_out)
    nparts = max(1, int(nparts))
    m = len(rows)
    if m == 0 or n_out <= 0:
        return OwnerPartition(
            row_bounds=np.array([0, n_out], dtype=np.int64),
            order=np.empty(0, dtype=np.int64),
            part_ptr=np.array([0, 0], dtype=np.int64),
        )
    rows = np.asarray(rows)
    counts = np.bincount(rows, minlength=n_out).astype(np.float64)
    ranges = balanced_partition(counts, nparts)
    bounds = np.array([lo for lo, _ in ranges] + [n_out], dtype=np.int64)
    if align > 1:
        bounds[1:-1] = (bounds[1:-1] // int(align)) * int(align)
        bounds = np.unique(bounds)
    npar = len(bounds) - 1
    part_of = np.searchsorted(bounds, rows, side="right") - 1
    order = np.argsort(part_of, kind="stable").astype(np.int64)
    part_ptr = np.searchsorted(
        part_of[order], np.arange(npar + 1), side="left"
    ).astype(np.int64)
    return OwnerPartition(row_bounds=bounds, order=order, part_ptr=part_ptr)


def owner_scatter_add(
    out: np.ndarray,
    rows: np.ndarray,
    contrib: np.ndarray,
    part: OwnerPartition,
    backend,
) -> None:
    """Scatter ``contrib`` into ``out`` under an owner partition.

    Each owner's updates touch a disjoint row slice of ``out``, so the
    ranges run concurrently with no privatization and no atomics; the
    stable bucketing keeps per-row accumulation order sequential.
    """

    def body(lo: int, hi: int) -> None:
        sel = part.order[lo:hi]
        np.add.at(out, rows[sel], contrib[sel])

    with backend.check_output(out, "owner"):
        backend.map_ranges(part.entry_ranges(), body)
