"""Compiled-tier executor: descriptor -> (Numba | fused-NumPy) dispatch.

Kernel call sites that resolved ``tier="compiled"`` hand their prepared
entry streams here.  The executor picks the execution *flavor* per call:

* ``numba-*`` — the ``@njit`` lowering, used when Numba is importable,
  the tensor is third-order (Mttkrp), and every operand shares one JIT
  dtype (float32/float64).  Variants: ``numba-nnz[+arena]`` (nnz-parallel
  with per-thread slabs, arena-pooled), ``numba-owner``, ``numba-ew``.
* ``fused-*`` — the single-dispatch NumPy fallback
  (:mod:`repro.compiled.fallback`), bit-compatible with the NumPy tier
  for the deterministic methods: ``fused-csr``, ``fused-segments``,
  ``fused-reduceat``, ``fused-ufunc``.

Every execution is accounted through
:func:`repro.compiled.tier.record_call` with its flavor, so the obs
metrics registry shows exactly which lowering served which cell.
"""

from __future__ import annotations

import numpy as np

from repro.compiled import fallback as fb
from repro.compiled import numba_tier as nb
from repro.compiled.plans import owner_plan
from repro.compiled.tier import record_call


def _gathered(cols, mats):
    """The (index column, factor matrix) pairs actually gathered."""
    return [(c, u) for c, u in zip(cols, mats) if u is not None]


def _jit_mttkrp_ok(gathered, values, out) -> bool:
    """Whether the specialized third-order JIT loops apply: Numba present,
    exactly two gathered matrices, one shared JIT dtype end to end."""
    if not nb.jit_supported(out.dtype) or len(gathered) != 2:
        return False
    dt = out.dtype
    return values.dtype == dt and all(u.dtype == dt for _, u in gathered)


def run_mttkrp(
    x,
    rows: np.ndarray,
    cols,
    values: np.ndarray,
    mats,
    out: np.ndarray,
    *,
    fmt: str,
    method: str,
    backend,
    privatize: str = "arena",
    align: int = 1,
    tag=0,
) -> np.ndarray:
    """Execute one Mttkrp under the compiled tier.

    ``x`` is the tensor (plan-cache host), ``rows``/``cols``/``values``
    the prepared entry stream (canonical int64 columns, ``None`` at the
    product mode), ``tag`` the plan-cache discriminator (the mode).
    """
    gathered = _gathered(cols, mats)

    # The sort method is pinned to the fused reduceat lowering even under
    # Numba: its bit-compatibility contract is the NumPy sort tier's
    # pairwise reduceat schedule, which a linear JIT sum cannot replay.
    if method != "sort" and _jit_mttkrp_ok(gathered, values, out):
        (c1, u1), (c2, u2) = gathered
        if method == "atomic":
            nthr = nb.slab_threads(backend.nthreads)
            if privatize == "arena":
                # Workspace-arena variant: the (T, I, R) slab stack is a
                # pooled backend workspace — zeroed reuse across calls.
                with backend.workspace((nthr,) + out.shape, out.dtype) as pool:
                    slab = pool.acquire()
                    nb.mttkrp3_nnz(rows, c1, c2, values, u1, u2, slab)
                    out += slab.sum(axis=0)
                flavor = "numba-nnz+arena"
            else:
                slab = np.zeros((nthr,) + out.shape, dtype=out.dtype)
                nb.mttkrp3_nnz(rows, c1, c2, values, u1, u2, slab)
                out += slab.sum(axis=0)
                flavor = "numba-nnz"
        else:  # "owner"
            part = owner_plan(
                x, rows, out.shape[0], backend.nthreads, align, tag
            )
            nb.mttkrp3_owner(
                part.order, part.part_ptr, rows, c1, c2, values, u1, u2, out
            )
            flavor = "numba-owner"
    else:
        fb.mttkrp(x, rows, cols, values, mats, out, method, tag)
        flavor = "fused-segments" if method == "sort" else "fused-csr"

    record_call("mttkrp", fmt, method, flavor)
    return out


def run_fiber_reduce(
    contrib: np.ndarray,
    fptr: np.ndarray,
    out: np.ndarray,
    *,
    kernel: str,
    fmt: str,
    backend,
) -> None:
    """Execute one Ttv/Ttm fiber-segment reduction under the compiled tier.

    Always the fused whole-array reduceat: it is already a single C
    dispatch, and its pairwise per-fiber schedule is the bit-compat
    contract with the chunked NumPy tier (see :mod:`~repro.compiled.numba_tier`).
    """
    fb.fiber_reduce(contrib, fptr, out)
    record_call(kernel, fmt, "fiber", "fused-reduceat")


def run_elementwise(
    op,
    ufunc,
    xv: np.ndarray,
    yv,
    out: np.ndarray,
    *,
    kernel: str,
    fmt: str,
    backend,
    scalar: bool,
) -> None:
    """Execute one Tew/Ts value loop under the compiled tier.

    ``op`` is the :class:`repro.types.OpKind` (or its string value) and
    ``ufunc`` its NumPy realization for the fallback flavor.
    """
    name = str(getattr(op, "value", op))
    jit_ok = (
        nb.jit_supported(out.dtype)
        and name in nb._EW_OPS
        and xv.dtype == out.dtype
        and (scalar or yv.dtype == out.dtype)
    )
    if jit_ok:
        nb.slab_threads(backend.nthreads)
        y = out.dtype.type(yv) if scalar else yv
        nb.elementwise(name, xv, y, out, scalar)
        flavor = "numba-ew"
    else:
        fb.elementwise(ufunc, xv, yv, out)
        flavor = "fused-ufunc"
    record_call(kernel, fmt, "elementwise", flavor)
