"""Numba ``@njit`` lowering of the loop-nest descriptors.

Imported lazily and guarded: when Numba is missing (the ``compiled``
optional extra is not installed) every entry point reports itself
unavailable and the executor stays on the fused NumPy fallback — never an
ImportError.

Lowering shape (prickle's SDDMM idiom from SNIPPETS.md: decompress to a
flat COO entry stream so nnz-parallel loops need no load balancing):

* **nnz-parallel atomic variant** — ``prange`` over non-zeros; each
  iteration privatizes into the slab of its executing thread
  (``numba.get_thread_id()``), the paper's ``omp atomic`` loop realized
  as bounded per-thread privatization.  With ``privatize="arena"`` the
  slab stack is checked out of the backend's
  :class:`~repro.parallel.workspace.WorkspacePool` cache (the
  workspace-arena variant): zeroed reusable buffers, no per-call
  allocation.
* **owner-computes variant** — ``prange`` over the owner ranges of a
  cached :func:`repro.parallel.ownership.owner_partition`; each owner
  writes its disjoint row slice directly, accumulating linearly in stable
  storage order — exactly ``np.add.at``'s floating-point schedule, so the
  result is bit-identical to the NumPy owner tier (and the sequential
  kernel).
* **elementwise variant** (Tew/Ts) — a flat ``prange`` with the fused
  scalar op; one rounding per element, bit-identical to the ufunc tier.

The ``sort`` method and the Ttv/Ttm fiber loops deliberately stay on the
fused ``np.add.reduceat`` fallback even when Numba is present: reduceat
reduces *pairwise*, and the bit-compatibility contract of those
deterministic paths pins the compiled tier to the NumPy tier's exact
schedule, which a linear JIT accumulation cannot reproduce.

All kernels are compiled ``fastmath=False`` (no reassociation, no FMA
contraction) so the compiled tier's rounding matches the NumPy tier;
dtype specialization is Numba's own per-signature dispatch, and compile
time is measured around first calls and reported through
:func:`repro.compiled.tier.record_jit_compile`.

Only third-order Mttkrp (two gathered factor matrices — every paper
benchmark tensor) gets a JIT loop; other orders fall back to the fused
NumPy pipeline, which handles arbitrary order.
"""

from __future__ import annotations

import time

import numpy as np

from repro.compiled.tier import record_jit_compile

try:  # pragma: no cover - exercised only with the compiled extra
    import numba
    from numba import njit, prange

    HAVE_NUMBA = True
except Exception:  # pragma: no cover - default in minimal installs
    numba = None
    njit = prange = None
    HAVE_NUMBA = False

#: Value dtypes the JIT kernels specialize over (others use the fallback).
JIT_DTYPES = (np.float32, np.float64)

_kernels: dict = {}


def _timed(disp, *args, kernel: str = ""):
    """Call a Numba dispatcher, accounting compile time on new signatures."""
    before = len(disp.signatures)
    t0 = time.perf_counter()
    out = disp(*args)
    dt = time.perf_counter() - t0
    if len(disp.signatures) > before:
        record_jit_compile(dt, kernel=kernel)
    return out


def jit_supported(dtype) -> bool:
    return HAVE_NUMBA and np.dtype(dtype).type in JIT_DTYPES


# ------------------------------------------------------------------ #
# Kernel factories (built once, cached; Numba specializes per dtype)
# ------------------------------------------------------------------ #
def _build(name: str, factory):
    k = _kernels.get(name)
    if k is None:
        k = factory()
        _kernels[name] = k
    return k


def _mttkrp3_nnz_factory():
    @njit(parallel=True, fastmath=False, nogil=True)
    def k(rows, c1, c2, vals, u1, u2, stack):
        n = rows.shape[0]
        r = u1.shape[1]
        for idx in prange(n):
            t = numba.get_thread_id()
            i = rows[idx]
            a = c1[idx]
            b = c2[idx]
            v = vals[idx]
            for j in range(r):
                stack[t, i, j] += v * u1[a, j] * u2[b, j]

    return k


def _mttkrp3_owner_factory():
    @njit(parallel=True, fastmath=False, nogil=True)
    def k(order, part_ptr, rows, c1, c2, vals, u1, u2, out):
        nparts = part_ptr.shape[0] - 1
        r = u1.shape[1]
        for p in prange(nparts):
            for jj in range(part_ptr[p], part_ptr[p + 1]):
                idx = order[jj]
                i = rows[idx]
                a = c1[idx]
                b = c2[idx]
                v = vals[idx]
                for j in range(r):
                    out[i, j] += v * u1[a, j] * u2[b, j]

    return k


_EW_OPS = ("add", "sub", "mul", "div")


def _ew_factory(op: str, scalar: bool):
    if op == "add":
        combine = njit(lambda a, b: a + b)
    elif op == "sub":
        combine = njit(lambda a, b: a - b)
    elif op == "mul":
        combine = njit(lambda a, b: a * b)
    else:
        combine = njit(lambda a, b: a / b)

    if scalar:

        def factory():
            @njit(parallel=True, fastmath=False, nogil=True)
            def k(xv, s, out):
                for i in prange(xv.shape[0]):
                    out[i] = combine(xv[i], s)

            return k

    else:

        def factory():
            @njit(parallel=True, fastmath=False, nogil=True)
            def k(xv, yv, out):
                for i in prange(xv.shape[0]):
                    out[i] = combine(xv[i], yv[i])

            return k

    return factory


# ------------------------------------------------------------------ #
# Entry points used by the executor
# ------------------------------------------------------------------ #
def _nthreads(limit: int) -> int:
    maxn = numba.config.NUMBA_NUM_THREADS
    n = min(int(limit), maxn) if limit else maxn
    n = max(1, n)
    try:
        numba.set_num_threads(n)
    except Exception:
        n = numba.get_num_threads()
    return n


def mttkrp3_nnz(rows, c1, c2, vals, u1, u2, stack) -> None:
    """nnz-parallel atomic variant into a ``(T, I, R)`` slab stack."""
    k = _build("mttkrp3_nnz", _mttkrp3_nnz_factory)
    _timed(k, rows, c1, c2, vals, u1, u2, stack, kernel="mttkrp/nnz")


def mttkrp3_owner(order, part_ptr, rows, c1, c2, vals, u1, u2, out) -> None:
    """Owner-computes variant over cached ownership partitions."""
    k = _build("mttkrp3_owner", _mttkrp3_owner_factory)
    _timed(
        k, order, part_ptr, rows, c1, c2, vals, u1, u2, out,
        kernel="mttkrp/owner",
    )


def elementwise(op: str, xv, yv, out, scalar: bool) -> None:
    """Tew (array-array) / Ts (array-scalar) fused value loop."""
    name = f"ew_{op}_{'s' if scalar else 'v'}"
    k = _build(name, _ew_factory(op, scalar))
    _timed(k, xv, yv, out, kernel=name)


def slab_threads(backend_nthreads: int) -> int:
    """Thread/slab count for the privatized nnz-parallel variant."""
    return _nthreads(int(backend_nthreads) if backend_nthreads else 0)
