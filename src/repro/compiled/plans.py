"""Per-tensor execution plans for the compiled tier.

A JIT tier amortizes compilation across calls; the fused fallback tier
amortizes *plan construction* the same way.  A plan is everything about a
(tensor, kernel cell) pair that does not depend on the factor matrices:
the stable row-sort permutation, segment boundaries, the cached CSR
scatter operator, and the owner partition.  Plans live in the tensor's
``_plan_cache`` slot (mirroring ``COOTensor.index_column`` /
``HiCOOTensor.global_row`` caching), so repeated kernel calls — a CP-ALS
sweep, a benchmark rep loop — pay plan construction once; ``sort()``
invalidates the cache along with the index-column cache.

Plan-build time is the fallback tier's analog of JIT compile time: it is
tracked through :func:`repro.compiled.tier.record_plan_build` so the
benchmark harness can report it separately from steady-state medians.
"""

from __future__ import annotations

import time

import numpy as np

from repro.compiled.tier import record_plan_build


class ScatterPlan:
    """Cached scatter structure for one (rows, n_out, dtype) stream.

    Attributes
    ----------
    presorted:
        Whether the row stream was already non-decreasing (the benchmark
        tensors are sorted by mode 0, so mode-0 Mttkrp skips the argsort).
    order:
        Stable argsort of the rows, or ``None`` when presorted.  Stability
        is what keeps per-row accumulation in sequential storage order —
        the bit-identity invariant for the sort/owner methods.
    starts, urows:
        Segment starts into the (sorted) stream and the output row of
        each segment.
    """

    __slots__ = (
        "n_out", "dtype", "presorted", "order", "starts", "urows",
        "_csr", "_rows",
    )

    def __init__(self, rows: np.ndarray, n_out: int, dtype):
        self.n_out = int(n_out)
        self.dtype = np.dtype(dtype)
        diffs = np.diff(rows)
        self.presorted = bool(diffs.size == 0 or bool(np.all(diffs >= 0)))
        if self.presorted:
            self.order = None
            sorted_rows = rows
        else:
            self.order = np.argsort(rows, kind="stable")
            sorted_rows = rows[self.order]
        if len(sorted_rows):
            self.starts = np.concatenate(
                ([0], np.flatnonzero(np.diff(sorted_rows)) + 1)
            ).astype(np.int64)
            self.urows = sorted_rows[self.starts]
        else:
            self.starts = np.zeros(0, dtype=np.int64)
            self.urows = np.zeros(0, dtype=np.int64)
        self._csr = None
        self._rows = rows  # kept only until the CSR operator is built

    def csr(self):
        """The cached ``(n_out, M)`` CSR selection operator ``S`` with
        ``S @ contrib`` = scatter-add (built lazily on first atomic use).

        Row ``i`` of ``S`` selects exactly the stream positions targeting
        output row ``i``, in storage order, so the compiled atomic path is
        one sparse-dense matmul in C instead of ``np.add.at``.
        """
        if self._csr is None:
            t0 = time.perf_counter()
            import scipy.sparse as sp

            rows = self._rows
            m = len(rows)
            self._csr = sp.csr_matrix(
                (
                    np.ones(m, dtype=self.dtype),
                    (rows, np.arange(m, dtype=np.int64)),
                ),
                shape=(self.n_out, m),
            )
            record_plan_build(time.perf_counter() - t0, what="csr")
        return self._csr


def _cache_of(tensor) -> dict:
    """The tensor's plan-cache dict (``_plan_cache`` slot, lazily built).

    Falls back to a throwaway dict for foreign objects without the slot,
    so the compiled tier still runs (just without cross-call reuse).
    """
    try:
        cache = tensor._plan_cache
    except AttributeError:
        return {}
    if cache is None:
        cache = {}
        tensor._plan_cache = cache
    return cache


def cached_plan(tensor, key: tuple, builder):
    """``tensor._plan_cache[key]``, building (and timing) on first use."""
    cache = _cache_of(tensor)
    plan = cache.get(key)
    if plan is None:
        t0 = time.perf_counter()
        plan = builder()
        record_plan_build(time.perf_counter() - t0, what=str(key[0]))
        cache[key] = plan
    return plan


def scatter_plan(tensor, rows: np.ndarray, n_out: int, dtype, tag) -> ScatterPlan:
    """The tensor's cached :class:`ScatterPlan` for one scatter stream."""
    key = ("scatter", tag, int(n_out), np.dtype(dtype).str)
    return cached_plan(tensor, key, lambda: ScatterPlan(rows, n_out, dtype))


def owner_plan(tensor, rows: np.ndarray, n_out: int, nparts: int, align: int, tag):
    """The tensor's cached owner partition (``repro.parallel.ownership``)."""
    from repro.parallel.ownership import owner_partition

    key = ("owner", tag, int(n_out), int(nparts), int(align))
    return cached_plan(
        tensor, key, lambda: owner_partition(rows, n_out, nparts, align=align)
    )
