"""Execution-tier selection and compile/plan-time accounting.

Every kernel call site resolves an execution tier:

* ``"numpy"``    — the chunked NumPy tier (the pre-compiled-tier paths);
* ``"compiled"`` — the descriptor-lowered tier: Numba ``@njit`` kernels
  when Numba is importable, else the fused single-dispatch NumPy fallback
  (bit-compatible for the deterministic methods);
* ``"auto"``     — pick per call from the tuner's tier-aware static cost
  model (:func:`repro.tune.recommend_tier`), which charges each tier its
  dispatch overhead so tiny tensors never pay JIT/plan costs.

Gating (in precedence order):

1. ``REPRO_COMPILED=0`` is a hard kill switch — the NumPy tier runs even
   when a call site explicitly asked for ``"compiled"``.
2. An explicit ``tier=`` argument wins over the environment default.
3. ``REPRO_COMPILED=1`` flips the *default* (unspecified) tier from
   ``"numpy"`` to ``"auto"``.
4. Backends that replay or perturb chunk decompositions (race-check,
   chaos) advertise ``supports_compiled = False`` and always get the
   NumPy tier — their correctness checks need the chunked loops.
5. Cells without a registered loop-nest descriptor stay on NumPy.

Numba is an *optional* import: :func:`available` probes it without ever
raising, so the suite imports cleanly on machines without the
``compiled`` extra installed.
"""

from __future__ import annotations

import os
import threading

#: Valid tier spellings accepted by kernel call sites.
TIERS = ("numpy", "compiled", "auto")

#: Environment variable gating the compiled tier ("0" kills, "1" enables
#: auto-by-default; unset leaves the default tier at "numpy").
ENV_VAR = "REPRO_COMPILED"

_probe_lock = threading.Lock()
_numba_available: "bool | None" = None

_stats_lock = threading.Lock()
_stats = {
    "jit_compiles": 0,
    "jit_compile_seconds": 0.0,
    "plan_builds": 0,
    "plan_build_seconds": 0.0,
    "calls": 0,
    "fallback_calls": 0,
}


def available() -> bool:
    """Whether the Numba JIT backend can be imported (probed once).

    Never raises: a broken or missing numba install degrades to the
    fused NumPy fallback, not to an ImportError at import time.
    """
    global _numba_available
    if _numba_available is None:
        with _probe_lock:
            if _numba_available is None:
                try:
                    import numba  # noqa: F401

                    _numba_available = True
                except Exception:
                    _numba_available = False
    return _numba_available


def _env_state() -> "str | None":
    """``"0"`` (killed), ``"1"`` (enabled-by-default), or ``None``."""
    raw = os.environ.get(ENV_VAR)
    if raw is None:
        return None
    raw = raw.strip()
    if raw in ("0", "1"):
        return raw
    return None  # unknown values behave like unset


def killed() -> bool:
    """``REPRO_COMPILED=0``: the compiled tier may never run."""
    return _env_state() == "0"


def default_tier() -> str:
    """The tier an unspecified (``tier=None``) call site resolves from."""
    return "auto" if _env_state() == "1" else "numpy"


def resolve_tier(
    tier: "str | None",
    *,
    backend=None,
    kernel: str = "",
    fmt: str = "",
    method: str = "",
    nnz: int = 0,
    r: int = 1,
) -> str:
    """Resolve a call site's tier request to ``"numpy"`` or ``"compiled"``.

    Parameters mirror what the static cost model needs: the suite cell
    (for descriptor lookup), the entry count and rank (for the auto
    threshold), and the executing backend (for its compiled-tier
    capability flag).
    """
    if tier is None:
        tier = default_tier()
    if tier not in TIERS:
        raise ValueError(
            f"unknown execution tier {tier!r}; expected one of {TIERS}"
        )
    if tier == "numpy":
        return "numpy"
    if killed():
        return "numpy"
    if backend is not None and not getattr(backend, "supports_compiled", True):
        return "numpy"
    from repro.compiled.descriptors import descriptor_for

    if descriptor_for(kernel, fmt, method) is None:
        return "numpy"
    if tier == "compiled":
        return "compiled"
    # tier == "auto": tier-aware static cost model (lazy import — the
    # tuner pulls in the bench cost models, which kernels must not).
    from repro.tune import recommend_tier

    return recommend_tier(kernel, nnz=nnz, r=r)


# ------------------------------------------------------------------ #
# Compile/plan accounting
# ------------------------------------------------------------------ #
def _metrics():
    from repro.obs.registry import get_metrics

    return get_metrics()


def record_jit_compile(seconds: float, kernel: str = "") -> None:
    """Account one JIT compilation (measured around a first call)."""
    with _stats_lock:
        _stats["jit_compiles"] += 1
        _stats["jit_compile_seconds"] += float(seconds)
    _metrics().inc("compiled.jit_compiles", kernel=kernel)
    _metrics().inc("compiled.jit_compile_seconds", float(seconds), kernel=kernel)


def record_plan_build(seconds: float, what: str = "") -> None:
    """Account one fallback plan construction (the fallback's compile)."""
    with _stats_lock:
        _stats["plan_builds"] += 1
        _stats["plan_build_seconds"] += float(seconds)
    _metrics().inc("compiled.plan_builds", what=what)
    _metrics().inc("compiled.plan_build_seconds", float(seconds), what=what)


def record_call(kernel: str, fmt: str, method: str, flavor: str) -> None:
    """Account one compiled-tier kernel execution."""
    with _stats_lock:
        _stats["calls"] += 1
        if flavor.startswith("fused"):
            _stats["fallback_calls"] += 1
    _metrics().inc(
        "compiled.calls", kernel=kernel, fmt=fmt, method=method, flavor=flavor
    )


def compile_stats() -> dict:
    """Snapshot of the process-wide compile/plan accounting.

    ``compile_seconds`` aggregates JIT compilation and fallback plan
    construction — the one number the benchmark harness subtracts from
    its warmup to keep ``median_s`` steady-state.
    """
    with _stats_lock:
        snap = dict(_stats)
    snap["compile_seconds"] = (
        snap["jit_compile_seconds"] + snap["plan_build_seconds"]
    )
    return snap
