"""Fused single-dispatch NumPy lowering of the loop-nest descriptors.

This is the compiled tier's execution path when Numba is absent — and the
bit-compatibility reference when it is present.  Where the NumPy tier
pays a Python-level chunk dispatch per schedule chunk plus an
``np.add.at`` scatter (an unbuffered per-element C loop), the fallback
lowers each descriptor to *one* vectorized pipeline with all structural
work hoisted into cached :mod:`repro.compiled.plans`:

* ``dense-rows`` scatter (Mttkrp ``atomic``/``owner``) — a cached CSR
  selection operator turns the scatter-add into one sparse-dense matmul
  in C.  CSR row accumulation is *linear* in storage order, which is
  exactly ``np.add.at``'s schedule — so the owner lowering is
  **bit-identical** to the NumPy owner tier (itself bit-identical to the
  sequential kernel);
* ``segments`` scatter (Mttkrp ``sort``, Ttv/Ttm fibers) — one
  ``np.add.reduceat`` over plan-cached segment starts, the *same
  pairwise* reduction the NumPy sort tier and fiber loops run, hence
  **bit-identical** to them per segment;
* ``positional`` scatter (Tew/Ts) — one fused ufunc call over the whole
  value array (bit-identical: chunking a ufunc never changes results).

The contribution computation deliberately mirrors
``repro.kernels.mttkrp._row_contributions`` operation-for-operation
(first multiply allocates, later ones run in place) so the fallback's
rounding matches the NumPy tier exactly.
"""

from __future__ import annotations

import numpy as np

from repro.compiled.plans import ScatterPlan, scatter_plan


def mttkrp_contrib(values, cols, mats, dtype) -> np.ndarray:
    """``contrib[k, :] = x_k * prod_{m != mode} U(m)[i_m(k), :]``.

    Same operation order as the NumPy tier's ``_row_contributions`` —
    the bit-compatibility contract of the deterministic methods.
    """
    contrib = values.astype(dtype, copy=True)[:, None]
    first = True
    for col, u in zip(cols, mats):
        if u is None:
            continue
        rows_u = u[col, :]
        if first:
            contrib = contrib * rows_u
            first = False
        else:
            contrib *= rows_u
    return contrib


def scatter_dense_rows(out: np.ndarray, plan: ScatterPlan, contrib: np.ndarray) -> None:
    """Mttkrp ``atomic``/``owner`` scatter: one CSR matmul whose linear
    per-row accumulation replays ``np.add.at``'s schedule bit-for-bit."""
    out += plan.csr() @ contrib


def scatter_segments(out: np.ndarray, plan: ScatterPlan, contrib: np.ndarray) -> None:
    """Mttkrp ``sort`` scatter: stable-order segmented reduce.

    Per output row the summands arrive in sequential storage order and
    are reduced by the same pairwise ``np.add.reduceat`` the NumPy sort
    tier runs — the identical floating-point schedule, hence bit-identical.
    """
    if not len(plan.starts):
        return
    stream = contrib if plan.order is None else contrib[plan.order]
    out[plan.urows] += np.add.reduceat(stream, plan.starts, axis=0)


def mttkrp(x, rows, cols, values, mats, out, method: str, tag) -> np.ndarray:
    """Fused Mttkrp over a prepared (rows, cols, values) entry stream.

    The scatter lowering is chosen to match each NumPy-tier method's
    floating-point schedule exactly: ``atomic`` and ``owner`` accumulate
    linearly per row in storage order (``np.add.at``'s schedule — the CSR
    matmul reproduces it), while ``sort`` reduces with ``np.add.reduceat``
    (pairwise) just like ``sorted_reduce_rows``.
    """
    contrib = mttkrp_contrib(values, cols, mats, out.dtype)
    plan = scatter_plan(x, rows, out.shape[0], out.dtype, tag)
    if method == "sort":
        scatter_segments(out, plan, contrib)
    else:  # "atomic" and "owner": linear per-row accumulation
        scatter_dense_rows(out, plan, contrib)
    return out


def fiber_reduce(contrib: np.ndarray, fptr: np.ndarray, out: np.ndarray) -> None:
    """Ttv/Ttm fiber loop: one whole-array segmented reduce.

    Fibers are non-empty contiguous runs, so ``reduceat`` over
    ``fptr[:-1]`` computes exactly the per-fiber ``reduceat`` sums the
    chunked NumPy tier computes (a fiber's reduction schedule depends only
    on its own entries) — bit-identical, minus the chunk dispatch.
    """
    if len(fptr) <= 1:
        return
    out[...] = np.add.reduceat(contrib, fptr[:-1].astype(np.int64), axis=0)


def elementwise(ufunc, xv: np.ndarray, yv, out: np.ndarray) -> None:
    """Tew/Ts value loop: a single fused ufunc dispatch."""
    ufunc(xv, yv, out=out)
