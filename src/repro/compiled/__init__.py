"""Compiled kernel tier: loop-nest descriptors + JIT/fused execution.

The suite's second execution tier.  Each (kernel, format, method) cell is
described once by a declarative :class:`~repro.compiled.descriptors.LoopNest`;
the descriptor is lowered either by Numba ``@njit`` kernels (when the
``compiled`` optional extra is installed) or by a fused single-dispatch
NumPy pipeline that is bit-compatible with the NumPy tier for the
deterministic methods.  :func:`resolve_tier` is the single gate every
kernel call site goes through; :func:`available` probes Numba without
ever raising.
"""

from repro.compiled.descriptors import (
    DESCRIPTORS,
    LoopNest,
    describe_all,
    descriptor_for,
)
from repro.compiled.execute import (
    run_elementwise,
    run_fiber_reduce,
    run_mttkrp,
)
from repro.compiled.tier import (
    ENV_VAR,
    TIERS,
    available,
    compile_stats,
    default_tier,
    killed,
    resolve_tier,
)

__all__ = [
    "DESCRIPTORS",
    "ENV_VAR",
    "LoopNest",
    "TIERS",
    "available",
    "compile_stats",
    "default_tier",
    "describe_all",
    "descriptor_for",
    "killed",
    "resolve_tier",
    "run_elementwise",
    "run_fiber_reduce",
    "run_mttkrp",
]
