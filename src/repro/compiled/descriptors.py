"""Declarative loop-nest descriptors for the compiled execution tier.

The taco lineage (format abstraction, PLDI'17; workspaces, arXiv
1802.10574) lowers format-agnostic index notation to specialized loops.
We borrow the shape of that pipeline at benchmark-suite scale: each
(kernel, format, scatter method) cell of the suite is described *once*,
declaratively, by a :class:`LoopNest` — index order, gather pattern,
scatter/accumulator kind, fused scalar op — and the execution tiers
consume the descriptor instead of hand-written per-cell kernels:

* :mod:`repro.compiled.numba_tier` lowers a descriptor to a cached
  ``@njit(parallel=..., fastmath=False)`` nopython kernel (when Numba is
  installed), specialized per dtype and variant;
* :mod:`repro.compiled.fallback` lowers the same descriptor to a fused
  single-dispatch NumPy pipeline (no Python-level chunk loop, cached
  scatter plans) that is bit-compatible with the NumPy tier for the
  deterministic methods.

Descriptors are *data*: the registry below is the complete enumeration of
what the compiled tier can execute, and
:func:`repro.compiled.tier.resolve_tier` consults it before ever
promising the compiled tier to a call site.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Scatter kinds a loop nest may declare.
SCATTER_DENSE_ROWS = "dense-rows"      # out[row[k], :] += contrib[k, :]
SCATTER_SEGMENTS = "segments"          # sorted stream, one reduce per run
SCATTER_OWNER_ROWS = "owner-rows"      # disjoint owner row-ranges, in order
SCATTER_POSITIONAL = "positional"      # out[k] = f(in[k]) — no conflicts

#: Accumulator kinds.
ACC_WORKSPACE = "workspace"    # per-thread dense arena, reduced once
ACC_SEGMENT = "segment-sum"    # linear sum per contiguous segment
ACC_OWNED = "owned-output"     # accumulate straight into owned rows
ACC_NONE = "none"              # elementwise, nothing carried


@dataclass(frozen=True)
class LoopNest:
    """One (kernel, format, method) cell's loop-nest description.

    Attributes
    ----------
    kernel, fmt, method:
        The suite cell this nest executes.  ``method`` is the scatter
        method for Mttkrp (``atomic``/``sort``/``owner``), ``fiber`` for
        the fiber-parallel kernels, ``elementwise`` for Tew/Ts.
    parallel_axis:
        The loop the execution tier parallelizes: ``nnz``, ``fiber``,
        ``owner-range``, or ``value`` (flat value array).
    index_order:
        Loop indices outermost-first, symbolic (``nnz``, ``fiber``,
        ``entry``, ``r`` for the rank column).
    gathers:
        Operands gathered per innermost iteration, symbolic: ``value``,
        ``mat[m]`` (factor-matrix row via the mode-``m`` index column),
        ``vec`` (dense vector entry), ``peer`` (second tensor's value).
    scatter:
        One of the ``SCATTER_*`` kinds — how results reach the output.
    accumulator:
        One of the ``ACC_*`` kinds — what carries partial sums.
    fused_op:
        Fused scalar ufunc for the elementwise kernels (``add``...),
        ``None`` for the contraction kernels (whose fused op is the
        multiply-accumulate implied by the gathers).
    workspace:
        Whether the nest privatizes into
        :class:`repro.parallel.workspace.WorkspacePool` arenas.
    notes:
        Free-text lowering notes surfaced by ``describe()``.
    """

    kernel: str
    fmt: str
    method: str
    parallel_axis: str
    index_order: tuple
    gathers: tuple
    scatter: str
    accumulator: str
    fused_op: "str | None" = None
    workspace: bool = False
    notes: str = ""

    @property
    def key(self) -> tuple:
        return (self.kernel, self.fmt, self.method)

    def describe(self) -> str:
        """One-line human rendering (``repro info`` / docs)."""
        axes = ">".join(self.index_order)
        gat = ",".join(self.gathers) or "-"
        return (
            f"{self.kernel}/{self.fmt}/{self.method}: for[{axes}] "
            f"gather({gat}) -> {self.scatter} acc={self.accumulator}"
            + (f" fused={self.fused_op}" if self.fused_op else "")
            + (" [workspace]" if self.workspace else "")
        )


def _mttkrp_nests(fmt: str) -> list:
    gathers = ("value", "mat[m!=mode]")
    entry_axis = "nnz" if fmt == "coo" else "nnz(block-major)"
    return [
        LoopNest(
            kernel="mttkrp", fmt=fmt, method="atomic",
            parallel_axis="nnz",
            index_order=(entry_axis, "r"),
            gathers=gathers,
            scatter=SCATTER_DENSE_ROWS,
            accumulator=ACC_WORKSPACE,
            workspace=True,
            notes="nnz-parallel; per-thread arena stack, tree-reduced once",
        ),
        LoopNest(
            kernel="mttkrp", fmt=fmt, method="sort",
            parallel_axis="fiber",
            index_order=("segment", "entry", "r"),
            gathers=gathers,
            scatter=SCATTER_SEGMENTS,
            accumulator=ACC_SEGMENT,
            notes="stable row-sorted stream; linear per-segment sums are "
            "bit-identical to the NumPy sort tier",
        ),
        LoopNest(
            kernel="mttkrp", fmt=fmt, method="owner",
            parallel_axis="owner-range",
            index_order=("owner", "entry", "r"),
            gathers=gathers,
            scatter=SCATTER_OWNER_ROWS,
            accumulator=ACC_OWNED,
            notes="reuses repro.parallel.ownership partitions; per-row "
            "accumulation keeps sequential storage order (bit-identical)",
        ),
    ]


def _fiber_nests(kernel: str, fmt: str, gathers: tuple) -> LoopNest:
    return LoopNest(
        kernel=kernel, fmt=fmt, method="fiber",
        parallel_axis="fiber",
        index_order=("fiber", "entry") + (("r",) if kernel == "ttm" else ()),
        gathers=gathers,
        scatter=SCATTER_SEGMENTS,
        accumulator=ACC_SEGMENT,
        notes="race-free by the sparse-dense property; one linear "
        "reduction per fiber run",
    )


def _elementwise_nest(kernel: str, fmt: str, gathers: tuple) -> LoopNest:
    return LoopNest(
        kernel=kernel, fmt=fmt, method="elementwise",
        parallel_axis="value",
        index_order=("nnz",),
        gathers=gathers,
        scatter=SCATTER_POSITIONAL,
        accumulator=ACC_NONE,
        fused_op="add|sub|mul|div",
        notes="single fused pass over the value array",
    )


def _build_registry() -> dict:
    nests: list = []
    for fmt in ("coo", "hicoo"):
        nests.extend(_mttkrp_nests(fmt))
        nests.append(_fiber_nests("ttv", fmt, ("value", "vec")))
        nests.append(_fiber_nests("ttm", fmt, ("value", "mat[mode]")))
        nests.append(_elementwise_nest("tew", fmt, ("value", "peer")))
        nests.append(_elementwise_nest("ts", fmt, ("value",)))
    # HiCOO-Ttv/Ttm execute through the gHiCOO re-representation (the
    # product mode uncompressed); their shared fiber loop runs under that
    # label, so the compiled tier registers it as well.
    nests.append(_fiber_nests("ttv", "ghicoo", ("value", "vec")))
    nests.append(_fiber_nests("ttm", "ghicoo", ("value", "mat[mode]")))
    return {n.key: n for n in nests}


#: The complete compiled-tier coverage: (kernel, fmt, method) -> LoopNest.
DESCRIPTORS: dict = _build_registry()


def descriptor_for(kernel: str, fmt: str, method: str) -> "LoopNest | None":
    """The loop nest for a suite cell, or ``None`` when the compiled tier
    has no lowering for it (the selector then keeps the NumPy tier)."""
    return DESCRIPTORS.get((kernel, fmt, method))


def describe_all() -> str:
    """Render every registered nest (``repro info`` support)."""
    return "\n".join(
        DESCRIPTORS[k].describe() for k in sorted(DESCRIPTORS)
    )
