"""Empirical Roofline Tool (ERT) style machine characterization.

The paper runs ERT (Lo et al., 2015) — STREAM-like micro-kernels at
varying working-set sizes — to obtain each platform's *obtainable* DRAM
and cache bandwidths, which become the roofline ceilings of Figure 3.

Here we provide both halves:

* :func:`measure_host` runs actual NumPy micro-kernels (copy / scale /
  triad at several sizes, and a GEMM for the compute roof) on the machine
  executing the suite, yielding a calibrated :class:`PlatformSpec` for
  the host — the "measured" series of the benchmark harness.
* :func:`modeled_ceilings` returns the modeled ERT ceilings for the four
  paper platforms (theoretical parameters x derate, see
  :mod:`repro.roofline.platform`) — the basis for reproducing Figure 3.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.roofline.platform import PlatformSpec


@dataclass(frozen=True)
class ErtCeilings:
    """The roofline ceilings ERT produces for one machine."""

    platform: str
    peak_sp_gflops: float
    dram_bw_gbs: float  # obtainable ("ERT-DRAM")
    llc_bw_gbs: float  # obtainable ("ERT-LLC")
    theoretical_bw_gbs: float
    theoretical_gflops: float


def _bench_triad(n: int, repeats: int = 3) -> float:
    """STREAM triad ``a = b + s*c`` bandwidth in GB/s for float32 arrays
    of ``n`` elements (3 x 4 bytes moved per element)."""
    b = np.random.default_rng(0).random(n).astype(np.float32)
    c = np.random.default_rng(1).random(n).astype(np.float32)
    a = np.empty_like(b)
    s = np.float32(1.1)
    # warm-up
    np.add(b, s * c, out=a)
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        np.multiply(c, s, out=a)
        np.add(a, b, out=a)
        best = min(best, time.perf_counter() - t0)
    return (3 * 4 * n) / best / 1e9


def _bench_gemm(n: int = 512, repeats: int = 3) -> float:
    """Dense single-precision GEMM GFLOPS (the compute roof proxy)."""
    a = np.random.default_rng(2).random((n, n)).astype(np.float32)
    b = np.random.default_rng(3).random((n, n)).astype(np.float32)
    a @ b  # warm-up
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        a @ b
        best = min(best, time.perf_counter() - t0)
    return (2 * n**3) / best / 1e9


def measure_host(
    dram_elems: int = 8_000_000,
    llc_elems: int = 200_000,
    name: str = "Host",
) -> PlatformSpec:
    """Characterize the executing machine with ERT-style micro-kernels.

    ``dram_elems`` should exceed the LLC (working set 3 x 4 x n bytes);
    ``llc_elems`` should fit inside it.  Returns a :class:`PlatformSpec`
    whose ceilings are the *measured* values (derate set to 1.0 so that
    ``ert_dram_bw_gbs`` is exactly the measurement).
    """
    dram_bw = _bench_triad(dram_elems)
    llc_bw = max(_bench_triad(llc_elems), dram_bw)
    gflops = _bench_gemm()
    import os

    return PlatformSpec(
        name=name,
        kind="cpu",
        processor="host",
        microarch="host",
        freq_ghz=0.0,
        cores=os.cpu_count() or 1,
        peak_sp_gflops=gflops,
        llc_bytes=3 * 4 * llc_elems,
        mem_gb=0.0,
        mem_type="unknown",
        mem_freq_ghz=0.0,
        mem_bw_gbs=dram_bw,
        compiler="numpy",
        sockets=1,
        dram_derate=1.0,
        llc_bw_ratio=llc_bw / dram_bw,
    )


def modeled_ceilings(platform: PlatformSpec) -> ErtCeilings:
    """The ERT ceilings for a (paper) platform from its spec."""
    return ErtCeilings(
        platform=platform.name,
        peak_sp_gflops=platform.peak_sp_gflops,
        dram_bw_gbs=platform.ert_dram_bw_gbs,
        llc_bw_gbs=platform.ert_llc_bw_gbs,
        theoretical_bw_gbs=platform.mem_bw_gbs,
        theoretical_gflops=platform.peak_sp_gflops,
    )
