"""Per-tensor operational intensity — the accurate OI of Figures 4-7.

The paper marks the *asymptotic* OIs of Table 1 on Figure 3, but the
per-tensor roofline bounds of Figures 4-7 use "an accurate #Flops/#Bytes
ratio by taking different tensor features into account, especially for
Ttv and Ttm because of the MF term".  This module derives those accurate
OIs from a tensor's measured features.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.types import DEFAULT_BLOCK_SIZE, DEFAULT_RANK, Format, Kernel
from repro.kernels.flops import KernelCost, kernel_cost
from repro.sptensor.coo import COOTensor
from repro.sptensor.hicoo import HiCOOTensor


@dataclass(frozen=True)
class TensorFeatures:
    """The feature vector the cost formulas consume.

    ``mf_per_mode[m]`` is the mode-``m`` fiber count; mode-oriented
    kernels are averaged over modes in the paper, so :attr:`mf_avg` is
    what enters the averaged OI.
    """

    name: str
    shape: tuple[int, ...]
    nnz: int
    mf_per_mode: tuple[int, ...]
    nb: int  # HiCOO block count (0 if never blocked)
    block_size: int
    max_fiber_imbalance: float
    max_block_nnz: int
    contention_per_mode: tuple[float, ...]  # mean updates per output row

    @property
    def order(self) -> int:
        return len(self.shape)

    @property
    def mf_avg(self) -> float:
        return float(np.mean(self.mf_per_mode))


def extract_features(
    tensor: COOTensor,
    name: str = "tensor",
    block_size: int = DEFAULT_BLOCK_SIZE,
    hicoo: HiCOOTensor | None = None,
) -> TensorFeatures:
    """Measure every feature the roofline/cost machinery needs, once.

    Pass an already-built ``hicoo`` to avoid re-blocking the tensor.
    """
    if hicoo is None:
        hicoo = HiCOOTensor.from_coo(tensor, block_size)
    mf, imb, cont = [], [], []
    for m in range(tensor.nmodes):
        lengths = tensor.fiber_index(m).fiber_lengths()
        mf.append(int(len(lengths)))
        if len(lengths):
            imb.append(float(lengths.max() / lengths.mean()))
        else:
            imb.append(1.0)
        rows = np.unique(tensor.indices[:, m])
        cont.append(tensor.nnz / len(rows) if len(rows) else 0.0)
    nnzb = hicoo.nnz_per_block()
    return TensorFeatures(
        name=name,
        shape=tensor.shape,
        nnz=tensor.nnz,
        mf_per_mode=tuple(mf),
        nb=hicoo.nblocks,
        block_size=block_size,
        max_fiber_imbalance=max(imb) if imb else 1.0,
        max_block_nnz=int(nnzb.max()) if len(nnzb) else 0,
        contention_per_mode=tuple(cont),
    )


def cost_for(
    features: TensorFeatures,
    kernel: "Kernel | str",
    fmt: "Format | str" = Format.COO,
    r: int = DEFAULT_RANK,
) -> KernelCost:
    """Table 1 cost instantiated with this tensor's features (mode-avg)."""
    kernel = Kernel.coerce(kernel)
    fmt = Format.coerce(fmt)
    return kernel_cost(
        kernel,
        fmt,
        m=features.nnz,
        mf=max(1, int(round(features.mf_avg))),
        r=r,
        nb=max(1, features.nb),
        block_size=features.block_size,
        order=features.order,
    )


def accurate_oi(
    features: TensorFeatures,
    kernel: "Kernel | str",
    fmt: "Format | str" = Format.COO,
    r: int = DEFAULT_RANK,
) -> float:
    """The per-tensor OI marked against the roofline in Figures 4-7."""
    return cost_for(features, kernel, fmt, r).oi
