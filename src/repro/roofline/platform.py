"""Platform specifications — the paper's Table 4.

Two Intel CPU NUMA machines (Bluesky, Wingtip) and two NVIDIA GPUs in
DGX-1 stations (P100, V100), with theoretical peak single-precision
performance and memory bandwidth computed from the hardware parameters,
plus the ERT-style *obtainable* ceilings used by the roofline model.

Absent real hardware, the ERT ceilings are modeled as a derate of the
theoretical numbers — the derates default to values typical of ERT runs
on these microarchitectures (~80-85% of peak DRAM bandwidth; LLC ceilings
a small multiple of DRAM) and can be recalibrated against a real ERT run
by constructing a custom :class:`PlatformSpec`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class PlatformSpec:
    """One column of Table 4 plus derived roofline ceilings."""

    name: str
    kind: str  # "cpu" | "gpu"
    processor: str
    microarch: str
    freq_ghz: float
    cores: int  # physical cores (CPU) or CUDA cores (GPU)
    peak_sp_gflops: float
    llc_bytes: int
    mem_gb: float
    mem_type: str
    mem_freq_ghz: float
    mem_bw_gbs: float  # theoretical
    compiler: str
    sockets: int = 1  # CPU NUMA sockets
    sm_count: int = 0  # GPU streaming multiprocessors
    dram_derate: float = 0.85  # ERT-DRAM / theoretical
    llc_bw_ratio: float = 4.0  # ERT-LLC / ERT-DRAM
    numa_penalty: float = 0.25  # per extra socket, for irregular kernels
    atomic_gups: float = 0.0  # GPU atomic update throughput (G updates/s)

    @property
    def ert_dram_bw_gbs(self) -> float:
        """Obtainable DRAM/global-memory bandwidth (the "ERT-DRAM" line)."""
        return self.mem_bw_gbs * self.dram_derate

    @property
    def ert_llc_bw_gbs(self) -> float:
        """Obtainable last-level-cache bandwidth (the "ERT-LLC" line)."""
        return self.ert_dram_bw_gbs * self.llc_bw_ratio

    @property
    def is_gpu(self) -> bool:
        return self.kind == "gpu"

    @property
    def ridge_oi(self) -> float:
        """OI at which the DRAM roof meets the compute roof (flops/byte)."""
        return self.peak_sp_gflops / self.ert_dram_bw_gbs

    def with_overrides(self, **kw) -> "PlatformSpec":
        """A copy with calibration fields replaced."""
        return replace(self, **kw)


#: Intel Xeon Gold 6126 (Skylake), 2 sockets x 12 cores.
BLUESKY = PlatformSpec(
    name="Bluesky",
    kind="cpu",
    processor="Intel Xeon Gold 6126",
    microarch="Skylake",
    freq_ghz=2.60,
    cores=24,
    peak_sp_gflops=1000.0,
    llc_bytes=19 * 1024**2,
    mem_gb=196.0,
    mem_type="DDR4",
    mem_freq_ghz=2.666,
    mem_bw_gbs=256.0,
    compiler="gcc 7.1.0",
    sockets=2,
    dram_derate=0.80,
    llc_bw_ratio=4.0,
    numa_penalty=0.30,
)

#: Intel Xeon E7-4850 v3 (Haswell), 4 sockets x 14 cores.
WINGTIP = PlatformSpec(
    name="Wingtip",
    kind="cpu",
    processor="Intel Xeon E7-4850 v3",
    microarch="Haswell",
    freq_ghz=2.20,
    cores=56,
    peak_sp_gflops=2000.0,
    llc_bytes=35 * 1024**2,
    mem_gb=2114.0,
    mem_type="DDR4",
    mem_freq_ghz=2.133,
    mem_bw_gbs=273.0,
    compiler="gcc 5.5.0",
    sockets=4,
    dram_derate=0.75,
    llc_bw_ratio=3.5,
    numa_penalty=0.45,  # 4-socket NUMA hurts irregular kernels (Obs. 3)
)

#: NVIDIA Tesla P100 (Pascal) in a DGX-1.
DGX_1P = PlatformSpec(
    name="DGX-1P",
    kind="gpu",
    processor="NVIDIA Tesla P100",
    microarch="Pascal",
    freq_ghz=1.48,
    cores=3584,
    peak_sp_gflops=10_600.0,
    llc_bytes=3 * 1024**2,
    mem_gb=16.0,
    mem_type="HBM2",
    mem_freq_ghz=0.715,
    mem_bw_gbs=732.0,
    compiler="CUDA Tkit 9.1",
    sm_count=56,
    dram_derate=0.75,
    llc_bw_ratio=3.0,
    atomic_gups=30.0,  # Pascal atomics are a Mttkrp bottleneck
)

#: NVIDIA Tesla V100 (Volta) in a DGX-1: 2x LLC, improved atomics,
#: independent int/fp datapaths (paper Observation 2).
DGX_1V = PlatformSpec(
    name="DGX-1V",
    kind="gpu",
    processor="NVIDIA Tesla V100",
    microarch="Volta",
    freq_ghz=1.53,
    cores=5120,
    peak_sp_gflops=14_900.0,
    llc_bytes=6 * 1024**2,
    mem_gb=16.0,
    mem_type="HBM2",
    mem_freq_ghz=0.877,
    mem_bw_gbs=900.0,
    compiler="CUDA Tkit 9.0",
    sm_count=80,
    dram_derate=0.78,
    llc_bw_ratio=3.0,
    atomic_gups=90.0,  # Volta's improved atomic performance
)

PLATFORMS: tuple[PlatformSpec, ...] = (BLUESKY, WINGTIP, DGX_1P, DGX_1V)
_BY_NAME = {p.name.lower(): p for p in PLATFORMS}


def get_platform(name: str) -> PlatformSpec:
    """Look up a paper platform by (case-insensitive) name."""
    try:
        return _BY_NAME[name.lower()]
    except KeyError:
        raise KeyError(
            f"unknown platform {name!r}; known: {[p.name for p in PLATFORMS]}"
        ) from None
