"""Roofline models: platforms (Table 4), ERT ceilings, Figure 3."""

from repro.roofline.ert import ErtCeilings, measure_host, modeled_ceilings
from repro.roofline.model import RooflineModel, RooflinePoint
from repro.roofline.oi import (
    TensorFeatures,
    accurate_oi,
    cost_for,
    extract_features,
)
from repro.roofline.platform import (
    BLUESKY,
    DGX_1P,
    DGX_1V,
    PLATFORMS,
    WINGTIP,
    PlatformSpec,
    get_platform,
)

__all__ = [
    "PlatformSpec",
    "BLUESKY",
    "WINGTIP",
    "DGX_1P",
    "DGX_1V",
    "PLATFORMS",
    "get_platform",
    "RooflineModel",
    "RooflinePoint",
    "ErtCeilings",
    "measure_host",
    "modeled_ceilings",
    "TensorFeatures",
    "extract_features",
    "accurate_oi",
    "cost_for",
]
