"""Roofline performance model (Williams et al., CACM'09) — Figure 3.

``attainable(OI) = min(peak_flops, OI x bandwidth)`` for each bandwidth
ceiling (ERT-DRAM, ERT-LLC, theoretical DRAM).  The paper plots the four
platforms' rooflines with the Table 1 kernel OIs marked on the ERT-DRAM
line, and uses ``OI x ERT-DRAM`` as the per-tensor "Roofline performance"
upper bound in Figures 4-7.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.types import DEFAULT_RANK, Format, Kernel
from repro.kernels.flops import TABLE1_ASYMPTOTIC_OI
from repro.roofline.oi import TensorFeatures, accurate_oi, cost_for
from repro.roofline.platform import PlatformSpec


@dataclass(frozen=True)
class RooflinePoint:
    """One marked kernel on a roofline plot."""

    kernel: Kernel
    oi: float
    attainable_gflops: float


class RooflineModel:
    """The roofline of one platform."""

    def __init__(self, platform: PlatformSpec):
        self.platform = platform

    # ------------------------------------------------------------------ #
    def attainable(self, oi: float, ceiling: str = "dram") -> float:
        """Attainable GFLOPS at operational intensity ``oi``.

        ``ceiling``: "dram" (ERT-DRAM, the paper's bound), "llc"
        (ERT-LLC) or "theoretical" (nameplate bandwidth).
        """
        bw = {
            "dram": self.platform.ert_dram_bw_gbs,
            "llc": self.platform.ert_llc_bw_gbs,
            "theoretical": self.platform.mem_bw_gbs,
        }[ceiling]
        return min(self.platform.peak_sp_gflops, oi * bw)

    def bound_for(
        self,
        features: TensorFeatures,
        kernel: "Kernel | str",
        fmt: "Format | str" = Format.COO,
        r: int = DEFAULT_RANK,
    ) -> float:
        """Per-tensor "Roofline performance": accurate OI x ERT-DRAM."""
        return self.attainable(accurate_oi(features, kernel, fmt, r))

    def memory_bound_time(
        self,
        features: TensorFeatures,
        kernel: "Kernel | str",
        fmt: "Format | str" = Format.COO,
        r: int = DEFAULT_RANK,
        ceiling: str = "dram",
    ) -> float:
        """Seconds to stream the kernel's bytes at the given ceiling."""
        cost = cost_for(features, kernel, fmt, r)
        bw = {
            "dram": self.platform.ert_dram_bw_gbs,
            "llc": self.platform.ert_llc_bw_gbs,
            "theoretical": self.platform.mem_bw_gbs,
        }[ceiling]
        return cost.bytes / (bw * 1e9)

    # ------------------------------------------------------------------ #
    def series(
        self, oi_min: float = 2**-8, oi_max: float = 2**6, points: int = 57
    ) -> list[dict]:
        """The Figure 3 plot data: attainable GFLOPS per ceiling over a
        log-spaced OI range."""
        ois = np.logspace(np.log2(oi_min), np.log2(oi_max), points, base=2.0)
        return [
            {
                "oi": float(oi),
                "ert_dram": self.attainable(float(oi), "dram"),
                "ert_llc": self.attainable(float(oi), "llc"),
                "theoretical_dram": self.attainable(float(oi), "theoretical"),
                "peak": self.platform.peak_sp_gflops,
            }
            for oi in ois
        ]

    def kernel_marks(self, r: int = DEFAULT_RANK) -> list[RooflinePoint]:
        """The Table 1 asymptotic kernel OIs marked on the ERT-DRAM line,
        as in Figure 3."""
        return [
            RooflinePoint(k, oi, self.attainable(oi))
            for k, oi in TABLE1_ASYMPTOTIC_OI.items()
        ]

    def memory_bound_kernels(self) -> bool:
        """Paper finding: every suite kernel sits left of the ridge point
        (memory bound) on all four platforms."""
        return all(
            mark.oi < self.platform.ridge_oi for mark in self.kernel_marks()
        )
