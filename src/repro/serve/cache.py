"""Fingerprint-keyed result cache layered over a run store.

The run store already *is* a cache on disk — every completed case is one
``record`` line keyed by its :class:`~repro.bench.runner.SweepCase`
fingerprint.  This class is the in-memory, thread-safe view the serve
daemon answers from: load the journal once (validated against the
current fingerprint schema — a stale store raises instead of silently
missing), then serve lookups under a lock while the stealing pool's
workers push freshly journaled lines in via :meth:`add`.

Semantics mirror :class:`~repro.bench.runstore.RunState` exactly —
later lines win, a record supersedes a quarantine for the same
fingerprint — so the cache never diverges from what a process restart
would reload from the journal.
"""

from __future__ import annotations

import threading

from repro.bench.runstore import (
    QUARANTINE_KIND,
    RECORD_KIND,
    RunStore,
    StoreError,
)
from repro.metrics.perf import PerfRecord


class ResultCache:
    """Thread-safe fingerprint -> journal-line view of one run store."""

    def __init__(self, store: RunStore):
        self.store = store
        self._lock = threading.Lock()
        self._state = store.load()  # raises StoreError on a stale schema

    # -- reads --------------------------------------------------------- #
    def has(self, fingerprint: str) -> bool:
        """True when the fingerprint has a successful record."""
        with self._lock:
            return fingerprint in self._state.records

    def lookup(self, fingerprint: str) -> "dict | None":
        """The record line for a fingerprint, or None on a miss.

        Quarantined fingerprints miss — a re-request is allowed to retry
        them, and a later success supersedes the quarantine, exactly as
        on a resumed sweep.
        """
        with self._lock:
            return self._state.records.get(fingerprint)

    def quarantined(self, fingerprint: str) -> "dict | None":
        with self._lock:
            return self._state.quarantined.get(fingerprint)

    def completed(self) -> "set[str]":
        with self._lock:
            return set(self._state.records)

    def counts(self) -> "tuple[int, int]":
        """``(records, quarantined)`` sizes."""
        with self._lock:
            return len(self._state.records), len(self._state.quarantined)

    def perf_records(self, case_order=None) -> "list[PerfRecord]":
        """Stored measurements, optionally in enumerated case order."""
        with self._lock:
            return self._state.perf_records(case_order)

    # -- writes -------------------------------------------------------- #
    def add(self, line: dict) -> None:
        """Absorb one freshly journaled line (record or quarantine).

        Callers journal to the store first, then add the returned
        payload here — write-through order, so a crash between the two
        loses only the in-memory copy the restart reloads anyway.
        """
        if line.get("kind") not in (RECORD_KIND, QUARANTINE_KIND):
            raise StoreError(f"cannot cache line kind {line.get('kind')!r}")
        with self._lock:
            self._state.absorb(line)
