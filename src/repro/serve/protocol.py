"""Versioned JSON-lines wire protocol of the serve daemon.

One request per line, one or more response lines per request:

* request — ``{"v": 1, "id": "<client-chosen>", "op": "sweep",
  "params": {...}}``; ``id`` correlates responses on a multiplexed
  connection (many requests may be in flight per connection).
* response — ``{"v": 1, "id": ..., "ok": bool, "kind": "progress" |
  "result" | "error", "payload": {...}}``.  A request yields zero or
  more ``progress`` lines followed by exactly one terminal ``result``
  (``ok=true``) or ``error`` (``ok=false``).

The key sets below are pinned by ``tests/test_golden_schema.py`` —
scripted clients parse these lines, so wire drift must fail CI.  Bump
:data:`PROTOCOL_VERSION` on any backwards-incompatible change.
"""

from __future__ import annotations

import json

#: Bumped on any backwards-incompatible wire change.
PROTOCOL_VERSION = 1

OP_SWEEP = "sweep"
OP_REPORT = "report"
OP_REGRESS = "regress"
OP_STATUS = "status"
OP_HEALTH = "health"
OPS = (OP_SWEEP, OP_REPORT, OP_REGRESS, OP_STATUS, OP_HEALTH)

KIND_PROGRESS = "progress"
KIND_RESULT = "result"
KIND_ERROR = "error"
RESPONSE_KINDS = (KIND_PROGRESS, KIND_RESULT, KIND_ERROR)

REQUEST_KEYS = ("v", "id", "op", "params")
#: Optional request keys (absent = feature off; additive, so the
#: protocol version stays 1 and old clients/daemons interoperate).
REQUEST_OPTIONAL_KEYS = ("trace",)
#: Shape of the optional ``trace`` request field — the distributed
#: trace context a client injects so daemon + worker spans share its
#: trace_id (see :mod:`repro.obs.context`).  ``trace_id`` is required.
TRACE_KEYS = ("trace_id", "parent_span", "baggage")
RESPONSE_KEYS = ("v", "id", "ok", "kind", "payload")

#: Accepted ``params`` keys per op (all optional unless noted).
SWEEP_PARAM_KEYS = ("dataset", "tensors", "platforms", "scale", "seed", "rank")
REPORT_PARAM_KEYS = ("format",)
#: ``baseline`` (a run store or BENCH_*.json path) is required.
REGRESS_PARAM_KEYS = (
    "baseline", "threshold", "confidence", "resamples", "min_pairs", "seed",
)
STATUS_PARAM_KEYS = ()
HEALTH_PARAM_KEYS = ()
PARAM_KEYS = {
    OP_SWEEP: SWEEP_PARAM_KEYS,
    OP_REPORT: REPORT_PARAM_KEYS,
    OP_REGRESS: REGRESS_PARAM_KEYS,
    OP_STATUS: STATUS_PARAM_KEYS,
    OP_HEALTH: HEALTH_PARAM_KEYS,
}

#: ``result`` payload keys per op.
SWEEP_RESULT_KEYS = (
    "total",        # cases the request enumerated
    "hits",         # served straight from the cache
    "misses",       # not in cache (coalesced + executed)
    "coalesced",    # misses attached to an already-inflight execution
    "executed",     # misses this request queued for execution
    "completed",    # fingerprints with a record after the request
    "quarantined",  # fingerprints that exhausted retries
    "fingerprints", # full case-order fingerprint list
    "records",      # PerfRecord dicts, case order, quarantined omitted
)
REPORT_RESULT_KEYS = ("format", "nrecords", "report")
REGRESS_RESULT_KEYS = ("baseline", "candidate", "exit_code", "report")
STATUS_RESULT_KEYS = (
    "protocol", "store", "fingerprint_schema", "records", "quarantined",
    "inflight", "workers", "isolation", "counters",
)
HEALTH_RESULT_KEYS = (
    "protocol",        # wire protocol version
    "uptime_s",        # seconds since the daemon accepted connections
    "store",           # run-store path
    "records",         # completed records in the cache
    "quarantined",     # quarantined fingerprints in the cache
    "inflight",        # cases executing right now
    "queued",          # cases sitting in scheduler deques
    "workers",         # scheduler pool width
    "steals",          # work-stealing victim grabs so far
    "requests",        # requests served (all ops)
    "errors",          # requests that ended in an error response
    "cache_hits",      # sweep cases served from cache
    "cache_misses",    # sweep cases not in cache
    "cache_hit_rate",  # hits / (hits + misses), null before any sweep
    "request_seconds", # {"count", "sum", "p50", "p95", "p99"} latency
)
#: Keys of the ``request_seconds`` latency summary inside ``health``.
HEALTH_LATENCY_KEYS = ("count", "sum", "p50", "p95", "p99")
PROGRESS_KEYS = ("total", "hits", "done", "pending")

#: Counter/histogram names the daemon feeds through the metrics
#: registry (scraped via the Prometheus endpoint or ``status``).
SERVE_COUNTERS = (
    "serve.cache_hits",
    "serve.cache_misses",
    "serve.coalesced",
    "serve.errors",
    "serve.executed",
    "serve.quarantined",
    "serve.requests",
    "serve.steals",
)
SERVE_HISTOGRAMS = ("serve.request_seconds",)


class ProtocolError(ValueError):
    """A wire object that violates the pinned schema."""


def make_request(
    op: str,
    params: "dict | None" = None,
    id: str = "0",
    trace: "dict | None" = None,
) -> dict:
    """A validated request object.

    ``trace`` (optional) is a trace-context dict (:data:`TRACE_KEYS`)
    propagating the client's trace_id into the daemon.
    """
    obj = {
        "v": PROTOCOL_VERSION, "id": str(id), "op": op,
        "params": dict(params or {}),
    }
    if trace is not None:
        obj["trace"] = dict(trace)
    return validate_request(obj)


def validate_request(obj) -> dict:
    """Check a decoded request against the pinned schema; returns it."""
    if not isinstance(obj, dict):
        raise ProtocolError(
            f"request must be a JSON object, got {type(obj).__name__}"
        )
    missing = set(REQUEST_KEYS) - set(obj)
    extra = set(obj) - set(REQUEST_KEYS) - set(REQUEST_OPTIONAL_KEYS)
    if missing or extra:
        raise ProtocolError(
            f"request keys {sorted(obj)} != {sorted(REQUEST_KEYS)}"
            f" (+ optional {sorted(REQUEST_OPTIONAL_KEYS)})"
        )
    if "trace" in obj:
        _validate_trace(obj["trace"])
    if obj["v"] != PROTOCOL_VERSION:
        raise ProtocolError(
            f"protocol version {obj['v']!r} != {PROTOCOL_VERSION}"
        )
    op = obj["op"]
    if op not in OPS:
        raise ProtocolError(f"unknown op {op!r}; expected one of {OPS}")
    params = obj["params"]
    if not isinstance(params, dict):
        raise ProtocolError(f"params must be an object, got {type(params).__name__}")
    allowed = set(PARAM_KEYS[op])
    unknown = set(params) - allowed
    if unknown:
        raise ProtocolError(
            f"unknown {op} param(s) {sorted(unknown)}; allowed: {sorted(allowed)}"
        )
    if op == OP_REGRESS and "baseline" not in params:
        raise ProtocolError("regress requires params.baseline")
    return obj


def _validate_trace(trace) -> None:
    if not isinstance(trace, dict):
        raise ProtocolError(
            f"trace must be an object, got {type(trace).__name__}"
        )
    unknown = set(trace) - set(TRACE_KEYS)
    if unknown:
        raise ProtocolError(
            f"unknown trace key(s) {sorted(unknown)}; allowed: {sorted(TRACE_KEYS)}"
        )
    trace_id = trace.get("trace_id")
    if not isinstance(trace_id, str) or not trace_id:
        raise ProtocolError("trace.trace_id must be a non-empty string")
    if not isinstance(trace.get("parent_span", ""), str):
        raise ProtocolError("trace.parent_span must be a string")
    if not isinstance(trace.get("baggage", {}), dict):
        raise ProtocolError("trace.baggage must be an object")


def make_response(id: str, kind: str, payload: dict) -> dict:
    """A validated response object (``ok`` derives from ``kind``)."""
    return validate_response(
        {
            "v": PROTOCOL_VERSION,
            "id": str(id),
            "ok": kind != KIND_ERROR,
            "kind": kind,
            "payload": dict(payload),
        }
    )


def error_response(id: str, message: str) -> dict:
    return make_response(id, KIND_ERROR, {"error": str(message)})


def validate_response(obj) -> dict:
    """Check a decoded response against the pinned schema; returns it."""
    if not isinstance(obj, dict):
        raise ProtocolError(
            f"response must be a JSON object, got {type(obj).__name__}"
        )
    if set(obj) != set(RESPONSE_KEYS):
        raise ProtocolError(
            f"response keys {sorted(obj)} != {sorted(RESPONSE_KEYS)}"
        )
    if obj["v"] != PROTOCOL_VERSION:
        raise ProtocolError(
            f"protocol version {obj['v']!r} != {PROTOCOL_VERSION}"
        )
    if obj["kind"] not in RESPONSE_KINDS:
        raise ProtocolError(
            f"unknown response kind {obj['kind']!r}; expected {RESPONSE_KINDS}"
        )
    if obj["ok"] != (obj["kind"] != KIND_ERROR):
        raise ProtocolError(f"ok={obj['ok']!r} inconsistent with kind={obj['kind']!r}")
    if not isinstance(obj["payload"], dict):
        raise ProtocolError(
            f"payload must be an object, got {type(obj['payload']).__name__}"
        )
    return obj


def encode(obj: dict) -> bytes:
    """One wire line (newline-terminated canonical JSON)."""
    return (
        json.dumps(obj, sort_keys=True, separators=(",", ":")) + "\n"
    ).encode("utf-8")


def decode(line: "bytes | str") -> dict:
    """Parse one wire line into a dict (schema NOT yet validated)."""
    if isinstance(line, bytes):
        line = line.decode("utf-8")
    try:
        obj = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"undecodable wire line: {exc}") from None
    if not isinstance(obj, dict):
        raise ProtocolError(
            f"wire line must be a JSON object, got {type(obj).__name__}"
        )
    return obj
