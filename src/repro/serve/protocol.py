"""Versioned JSON-lines wire protocol of the serve daemon.

One request per line, one or more response lines per request:

* request — ``{"v": 1, "id": "<client-chosen>", "op": "sweep",
  "params": {...}}``; ``id`` correlates responses on a multiplexed
  connection (many requests may be in flight per connection).
* response — ``{"v": 1, "id": ..., "ok": bool, "kind": "progress" |
  "result" | "error", "payload": {...}}``.  A request yields zero or
  more ``progress`` lines followed by exactly one terminal ``result``
  (``ok=true``) or ``error`` (``ok=false``).

The key sets below are pinned by ``tests/test_golden_schema.py`` —
scripted clients parse these lines, so wire drift must fail CI.  Bump
:data:`PROTOCOL_VERSION` on any backwards-incompatible change.
"""

from __future__ import annotations

import json

#: Bumped on any backwards-incompatible wire change.
PROTOCOL_VERSION = 1

OP_SWEEP = "sweep"
OP_REPORT = "report"
OP_REGRESS = "regress"
OP_STATUS = "status"
OPS = (OP_SWEEP, OP_REPORT, OP_REGRESS, OP_STATUS)

KIND_PROGRESS = "progress"
KIND_RESULT = "result"
KIND_ERROR = "error"
RESPONSE_KINDS = (KIND_PROGRESS, KIND_RESULT, KIND_ERROR)

REQUEST_KEYS = ("v", "id", "op", "params")
RESPONSE_KEYS = ("v", "id", "ok", "kind", "payload")

#: Accepted ``params`` keys per op (all optional unless noted).
SWEEP_PARAM_KEYS = ("dataset", "tensors", "platforms", "scale", "seed", "rank")
REPORT_PARAM_KEYS = ("format",)
#: ``baseline`` (a run store or BENCH_*.json path) is required.
REGRESS_PARAM_KEYS = (
    "baseline", "threshold", "confidence", "resamples", "min_pairs", "seed",
)
STATUS_PARAM_KEYS = ()
PARAM_KEYS = {
    OP_SWEEP: SWEEP_PARAM_KEYS,
    OP_REPORT: REPORT_PARAM_KEYS,
    OP_REGRESS: REGRESS_PARAM_KEYS,
    OP_STATUS: STATUS_PARAM_KEYS,
}

#: ``result`` payload keys per op.
SWEEP_RESULT_KEYS = (
    "total",        # cases the request enumerated
    "hits",         # served straight from the cache
    "misses",       # not in cache (coalesced + executed)
    "coalesced",    # misses attached to an already-inflight execution
    "executed",     # misses this request queued for execution
    "completed",    # fingerprints with a record after the request
    "quarantined",  # fingerprints that exhausted retries
    "fingerprints", # full case-order fingerprint list
    "records",      # PerfRecord dicts, case order, quarantined omitted
)
REPORT_RESULT_KEYS = ("format", "nrecords", "report")
REGRESS_RESULT_KEYS = ("baseline", "candidate", "exit_code", "report")
STATUS_RESULT_KEYS = (
    "protocol", "store", "fingerprint_schema", "records", "quarantined",
    "inflight", "workers", "isolation", "counters",
)
PROGRESS_KEYS = ("total", "hits", "done", "pending")

#: Counter/histogram names the daemon feeds through the metrics
#: registry (scraped via the Prometheus endpoint or ``status``).
SERVE_COUNTERS = (
    "serve.cache_hits",
    "serve.cache_misses",
    "serve.coalesced",
    "serve.errors",
    "serve.executed",
    "serve.quarantined",
    "serve.requests",
    "serve.steals",
)
SERVE_HISTOGRAMS = ("serve.request_seconds",)


class ProtocolError(ValueError):
    """A wire object that violates the pinned schema."""


def make_request(op: str, params: "dict | None" = None, id: str = "0") -> dict:
    """A validated request object."""
    return validate_request(
        {"v": PROTOCOL_VERSION, "id": str(id), "op": op, "params": dict(params or {})}
    )


def validate_request(obj) -> dict:
    """Check a decoded request against the pinned schema; returns it."""
    if not isinstance(obj, dict):
        raise ProtocolError(
            f"request must be a JSON object, got {type(obj).__name__}"
        )
    if set(obj) != set(REQUEST_KEYS):
        raise ProtocolError(
            f"request keys {sorted(obj)} != {sorted(REQUEST_KEYS)}"
        )
    if obj["v"] != PROTOCOL_VERSION:
        raise ProtocolError(
            f"protocol version {obj['v']!r} != {PROTOCOL_VERSION}"
        )
    op = obj["op"]
    if op not in OPS:
        raise ProtocolError(f"unknown op {op!r}; expected one of {OPS}")
    params = obj["params"]
    if not isinstance(params, dict):
        raise ProtocolError(f"params must be an object, got {type(params).__name__}")
    allowed = set(PARAM_KEYS[op])
    unknown = set(params) - allowed
    if unknown:
        raise ProtocolError(
            f"unknown {op} param(s) {sorted(unknown)}; allowed: {sorted(allowed)}"
        )
    if op == OP_REGRESS and "baseline" not in params:
        raise ProtocolError("regress requires params.baseline")
    return obj


def make_response(id: str, kind: str, payload: dict) -> dict:
    """A validated response object (``ok`` derives from ``kind``)."""
    return validate_response(
        {
            "v": PROTOCOL_VERSION,
            "id": str(id),
            "ok": kind != KIND_ERROR,
            "kind": kind,
            "payload": dict(payload),
        }
    )


def error_response(id: str, message: str) -> dict:
    return make_response(id, KIND_ERROR, {"error": str(message)})


def validate_response(obj) -> dict:
    """Check a decoded response against the pinned schema; returns it."""
    if not isinstance(obj, dict):
        raise ProtocolError(
            f"response must be a JSON object, got {type(obj).__name__}"
        )
    if set(obj) != set(RESPONSE_KEYS):
        raise ProtocolError(
            f"response keys {sorted(obj)} != {sorted(RESPONSE_KEYS)}"
        )
    if obj["v"] != PROTOCOL_VERSION:
        raise ProtocolError(
            f"protocol version {obj['v']!r} != {PROTOCOL_VERSION}"
        )
    if obj["kind"] not in RESPONSE_KINDS:
        raise ProtocolError(
            f"unknown response kind {obj['kind']!r}; expected {RESPONSE_KINDS}"
        )
    if obj["ok"] != (obj["kind"] != KIND_ERROR):
        raise ProtocolError(f"ok={obj['ok']!r} inconsistent with kind={obj['kind']!r}")
    if not isinstance(obj["payload"], dict):
        raise ProtocolError(
            f"payload must be an object, got {type(obj['payload']).__name__}"
        )
    return obj


def encode(obj: dict) -> bytes:
    """One wire line (newline-terminated canonical JSON)."""
    return (
        json.dumps(obj, sort_keys=True, separators=(",", ":")) + "\n"
    ).encode("utf-8")


def decode(line: "bytes | str") -> dict:
    """Parse one wire line into a dict (schema NOT yet validated)."""
    if isinstance(line, bytes):
        line = line.decode("utf-8")
    try:
        obj = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"undecodable wire line: {exc}") from None
    if not isinstance(obj, dict):
        raise ProtocolError(
            f"wire line must be a JSON object, got {type(obj).__name__}"
        )
    return obj
