"""The benchmark daemon: an asyncio cache front over the sweep executor.

``BenchService`` listens on a local Unix socket speaking the JSON-lines
protocol (:mod:`repro.serve.protocol`).  Many clients connect at once
and each connection multiplexes many in-flight requests; every request
is served from three layers:

1. **cache** — fingerprints with a journaled record answer straight from
   the :class:`~repro.serve.cache.ResultCache` (O(1), no execution);
2. **single-flight** — fingerprints already executing for another
   request coalesce onto that execution;
3. **pool** — genuinely new fingerprints queue onto the work-stealing
   pool (:class:`~repro.serve.scheduler.StealScheduler`), which drives
   them through the same :class:`~repro.bench.executor.CaseRunner`
   retry/quarantine state machine as ``repro sweep``.

Every execution journals through the :class:`~repro.bench.runstore.RunStore`
*before* the cache and the scheduler publish it, so a daemon killed
mid-sweep loses nothing journaled: restart it on the same store and the
journaled cases are cache hits while the rest re-execute — the final
store is identical to an uninterrupted run (case seeds derive from
fingerprints, never from scheduling).

Observability: ``serve.*`` counters and the ``serve.request_seconds``
histogram stream through the process metrics registry, scrapeable live
from the optional HTTP endpoint (``metrics_port``) in Prometheus text
format, and summarized by the ``status`` op.
"""

from __future__ import annotations

import asyncio
import os
import signal
import threading
import time
from dataclasses import dataclass, field

from repro.bench.executor import CaseRunner, ExecutorConfig, build_sweep_cases
from repro.bench.runner import RunnerConfig
from repro.bench.runstore import RunStore
from repro.obs.registry import get_metrics
from repro.serve import protocol
from repro.serve.cache import ResultCache
from repro.serve.scheduler import StealScheduler


@dataclass
class ServeConfig:
    """Daemon wiring: where to listen, where to journal, how to execute."""

    socket_path: str
    store_path: str = "results/serve.jsonl"
    #: Work-stealing pool width.
    workers: int = 2
    steal_seed: int = 0
    #: ``"inline"`` (default: the daemon is long-lived and cases are
    #: trusted) or ``"process"`` for subprocess isolation per attempt.
    isolation: str = "inline"
    timeout_s: float = 120.0
    retries: int = 2
    #: Fault-injection table, forwarded to the executor (tests/CI smoke).
    faults: dict = field(default_factory=dict)
    #: Seconds between streamed ``progress`` lines of a pending sweep.
    progress_interval_s: float = 0.25
    #: TCP port of the Prometheus scrape endpoint (``None`` disables,
    #: ``0`` picks an ephemeral port).
    metrics_port: "int | None" = None

    def executor_config(self) -> ExecutorConfig:
        return ExecutorConfig(
            timeout_s=self.timeout_s,
            retries=self.retries,
            isolation=self.isolation,
            faults=dict(self.faults),
            workers=self.workers,
            steal_seed=self.steal_seed,
        )


class BenchService:
    """One daemon instance: socket front end + cache + stealing pool."""

    def __init__(self, config: ServeConfig):
        self.config = config
        self.store = RunStore(config.store_path)
        self.cache = ResultCache(self.store)  # raises on a stale store
        self.runner = CaseRunner(config.executor_config())
        self._store_lock = threading.Lock()
        self.scheduler = StealScheduler(
            self._execute_case,
            workers=config.workers,
            steal_seed=config.steal_seed,
        )
        self.metrics = get_metrics()
        self._stop = None  # asyncio.Event, created inside run()
        self._loop = None
        self._server = None
        self._connections = set()  # live (task, writer) pairs
        self._metrics_server = None
        #: Actual Prometheus endpoint port once bound (ephemeral-capable).
        self.metrics_port_bound: "int | None" = None

    # ------------------------------------------------------------------ #
    # execution (pool threads)
    # ------------------------------------------------------------------ #
    def _execute_case(self, case) -> bool:
        """Pool callback: run, journal, cache — in that order.

        The cache absorbs the journal line *before* this returns, i.e.
        before the scheduler removes the fingerprint from its live map —
        so at every instant a submitted fingerprint is a cache hit, an
        in-flight coalesce, or a fresh queue: never silently lost.
        """
        outcome = self.runner.run_case(
            case, self.store, store_lock=self._store_lock
        )
        self.cache.add(outcome.line)
        if not outcome.completed:
            self.metrics.inc("serve.quarantined")
        return outcome.completed

    # ------------------------------------------------------------------ #
    # request handlers (asyncio)
    # ------------------------------------------------------------------ #
    async def _handle_sweep(self, params: dict, send) -> dict:
        scale = float(params.get("scale", 1000.0))
        seed = int(params.get("seed", 0))
        runner_config = RunnerConfig(
            rank=int(params.get("rank", 16)),
            measure_host=False,  # serving requires deterministic records
            cache_scale=scale,
            seed=seed,
        )
        cases = await asyncio.to_thread(
            build_sweep_cases,
            dataset=params.get("dataset", "synthetic"),
            scale=scale,
            seed=seed,
            keys=params.get("tensors"),
            platforms=tuple(params.get("platforms", ("Bluesky",))),
            config=runner_config,
        )
        # Hits / coalesces / queues classify atomically under the
        # scheduler lock (the cache probe runs inside submit), so a case
        # completing concurrently is a hit, never a duplicate execution.
        ticket = self.scheduler.submit(cases, completed=self.cache.has)
        self.metrics.inc("serve.cache_hits", len(ticket.hits))
        self.metrics.inc(
            "serve.cache_misses", len(ticket.coalesced) + len(ticket.queued)
        )
        self.metrics.inc("serve.coalesced", len(ticket.coalesced))
        self.metrics.inc("serve.executed", len(ticket.queued))
        while True:
            finished = await asyncio.to_thread(
                ticket.wait, self.config.progress_interval_s
            )
            if finished:
                break
            await send(
                {
                    "total": ticket.total,
                    "hits": len(ticket.hits),
                    "done": ticket.done_count(),
                    "pending": ticket.pending_count(),
                }
            )
        completed, quarantined, records = [], [], []
        for fp in ticket.fingerprints:
            line = self.cache.lookup(fp)
            if line is not None:
                completed.append(fp)
                records.append(line["record"])
            else:
                quarantined.append(fp)
        return {
            "total": ticket.total,
            "hits": len(ticket.hits),
            "misses": len(ticket.coalesced) + len(ticket.queued),
            "coalesced": len(ticket.coalesced),
            "executed": len(ticket.queued),
            "completed": completed,
            "quarantined": quarantined,
            "fingerprints": list(ticket.fingerprints),
            "records": records,
        }

    async def _handle_report(self, params: dict, send) -> dict:
        from repro.bench.report import build_report

        fmt = params.get("format", "text")
        records = self.cache.perf_records()
        report = await asyncio.to_thread(build_report, records)
        body = report.as_dict() if fmt == "json" else report.render(fmt)
        return {"format": fmt, "nrecords": len(records), "report": body}

    async def _handle_regress(self, params: dict, send) -> dict:
        from repro.bench.regress import compare_paths

        report = await asyncio.to_thread(
            compare_paths,
            params["baseline"],
            self.store.path,
            threshold=float(params.get("threshold", 1.05)),
            confidence=float(params.get("confidence", 0.95)),
            resamples=int(params.get("resamples", 1000)),
            min_pairs=int(params.get("min_pairs", 2)),
            seed=int(params.get("seed", 0)),
        )
        return {
            "baseline": params["baseline"],
            "candidate": self.store.path,
            "exit_code": report.exit_code,
            "report": report.as_dict(),
        }

    async def _handle_status(self, params: dict, send) -> dict:
        from repro.bench.runner import fingerprint_schema_version

        nrecords, nquarantined = self.cache.counts()
        return {
            "protocol": protocol.PROTOCOL_VERSION,
            "store": self.store.path,
            "fingerprint_schema": fingerprint_schema_version(),
            "records": nrecords,
            "quarantined": nquarantined,
            "inflight": self.scheduler.inflight(),
            "workers": self.config.workers,
            "isolation": self.config.isolation,
            "counters": self.metrics.counter_totals(prefix="serve."),
        }

    _HANDLERS = {
        protocol.OP_SWEEP: _handle_sweep,
        protocol.OP_REPORT: _handle_report,
        protocol.OP_REGRESS: _handle_regress,
        protocol.OP_STATUS: _handle_status,
    }

    # ------------------------------------------------------------------ #
    # connection plumbing
    # ------------------------------------------------------------------ #
    async def _dispatch(self, request: dict, send) -> None:
        rid, op = request["id"], request["op"]
        self.metrics.inc("serve.requests", op=op)
        t0 = time.perf_counter()

        async def send_progress(payload):
            await send(
                protocol.make_response(rid, protocol.KIND_PROGRESS, payload)
            )

        try:
            handler = self._HANDLERS[op]
            payload = await handler(self, request["params"], send_progress)
            await send(
                protocol.make_response(rid, protocol.KIND_RESULT, payload)
            )
        except Exception as exc:  # noqa: BLE001 - reported on the wire
            self.metrics.inc("serve.errors", op=op)
            await send(
                protocol.error_response(rid, f"{type(exc).__name__}: {exc}")
            )
        finally:
            self.metrics.observe(
                "serve.request_seconds", time.perf_counter() - t0, op=op
            )

    async def _client_connected(self, reader, writer) -> None:
        conn = (asyncio.current_task(), writer)
        self._connections.add(conn)
        write_lock = asyncio.Lock()
        inflight = set()

        async def send(obj: dict) -> None:
            async with write_lock:
                writer.write(protocol.encode(obj))
                await writer.drain()

        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                if not line.strip():
                    continue
                try:
                    request = protocol.validate_request(protocol.decode(line))
                except protocol.ProtocolError as exc:
                    self.metrics.inc("serve.errors", op="protocol")
                    rid = "?"
                    try:
                        rid = str(protocol.decode(line).get("id", "?"))
                    except protocol.ProtocolError:
                        pass
                    await send(protocol.error_response(rid, str(exc)))
                    continue
                task = asyncio.ensure_future(self._dispatch(request, send))
                inflight.add(task)
                task.add_done_callback(inflight.discard)
        finally:
            self._connections.discard(conn)
            if inflight:
                await asyncio.gather(*inflight, return_exceptions=True)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError, asyncio.CancelledError):
                pass

    async def _metrics_scrape(self, reader, writer) -> None:
        """Minimal HTTP/1.0 Prometheus scrape endpoint (GET anything)."""
        try:
            while True:
                line = await reader.readline()
                if line in (b"", b"\r\n", b"\n"):
                    break
            body = self.metrics.render_prometheus().encode("utf-8")
            writer.write(
                b"HTTP/1.0 200 OK\r\n"
                b"Content-Type: text/plain; version=0.0.4\r\n"
                + f"Content-Length: {len(body)}\r\n\r\n".encode("ascii")
                + body
            )
            await writer.drain()
        finally:
            writer.close()

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def stop(self) -> None:
        """Ask the serve loop to exit (thread/signal-safe once running)."""
        if self._stop is not None and self._loop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)

    async def run(self, ready=None) -> None:
        """Serve until stopped; ``ready`` (a callable) fires once bound."""
        self._stop = asyncio.Event()
        self._loop = asyncio.get_running_loop()
        self.scheduler.start()
        sock = self.config.socket_path
        os.makedirs(os.path.dirname(sock) or ".", exist_ok=True)
        if os.path.exists(sock):
            os.unlink(sock)  # stale socket from a killed daemon
        self._server = await asyncio.start_unix_server(
            self._client_connected, path=sock
        )
        if self.config.metrics_port is not None:
            self._metrics_server = await asyncio.start_server(
                self._metrics_scrape, host="127.0.0.1",
                port=self.config.metrics_port,
            )
            self.metrics_port_bound = self._metrics_server.sockets[0].getsockname()[1]
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(sig, self._stop.set)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass
        if ready is not None:
            ready()
        try:
            await self._stop.wait()
        finally:
            self._server.close()
            await self._server.wait_closed()
            if self._metrics_server is not None:
                self._metrics_server.close()
                await self._metrics_server.wait_closed()
            # Drain open connections instead of letting loop teardown
            # cancel their handler tasks mid-await: closing the writer
            # EOFs the reader, so each handler exits its read loop.
            for task, writer in list(self._connections):
                writer.close()
            tasks = [task for task, _ in self._connections]
            if tasks:
                await asyncio.wait(tasks, timeout=10)
            self.scheduler.shutdown()
            if os.path.exists(sock):
                os.unlink(sock)

    def serve_forever(self, ready=None) -> None:
        """Blocking entry point (the ``repro serve`` CLI)."""
        asyncio.run(self.run(ready=ready))
