"""The benchmark daemon: an asyncio cache front over the sweep executor.

``BenchService`` listens on a local Unix socket speaking the JSON-lines
protocol (:mod:`repro.serve.protocol`).  Many clients connect at once
and each connection multiplexes many in-flight requests; every request
is served from three layers:

1. **cache** — fingerprints with a journaled record answer straight from
   the :class:`~repro.serve.cache.ResultCache` (O(1), no execution);
2. **single-flight** — fingerprints already executing for another
   request coalesce onto that execution;
3. **pool** — genuinely new fingerprints queue onto the work-stealing
   pool (:class:`~repro.serve.scheduler.StealScheduler`), which drives
   them through the same :class:`~repro.bench.executor.CaseRunner`
   retry/quarantine state machine as ``repro sweep``.

Every execution journals through the :class:`~repro.bench.runstore.RunStore`
*before* the cache and the scheduler publish it, so a daemon killed
mid-sweep loses nothing journaled: restart it on the same store and the
journaled cases are cache hits while the rest re-execute — the final
store is identical to an uninterrupted run (case seeds derive from
fingerprints, never from scheduling).

Observability: ``serve.*`` counters and the ``serve.request_seconds``
histogram stream through the process metrics registry, scrapeable live
from the optional HTTP endpoint (``metrics_port``) in Prometheus text
format, and summarized by the ``status`` op.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import threading
import time
from dataclasses import dataclass, field

from repro.bench.executor import CaseRunner, ExecutorConfig, build_sweep_cases
from repro.bench.runner import RunnerConfig
from repro.bench.runstore import RunStore
from repro.obs.context import TraceContext, activate_context, derive_span_id, new_trace_id
from repro.obs.export import merge_traces
from repro.obs.log import get_logger
from repro.obs.registry import get_metrics
from repro.obs.tracer import CAT_REQUEST, CAT_SCHED, Tracer, scoped_tracer
from repro.serve import protocol
from repro.serve.cache import ResultCache
from repro.serve.scheduler import StealScheduler


@dataclass
class ServeConfig:
    """Daemon wiring: where to listen, where to journal, how to execute."""

    socket_path: str
    store_path: str = "results/serve.jsonl"
    #: Work-stealing pool width.
    workers: int = 2
    steal_seed: int = 0
    #: ``"inline"`` (default: the daemon is long-lived and cases are
    #: trusted) or ``"process"`` for subprocess isolation per attempt.
    isolation: str = "inline"
    timeout_s: float = 120.0
    retries: int = 2
    #: Fault-injection table, forwarded to the executor (tests/CI smoke).
    faults: dict = field(default_factory=dict)
    #: Seconds between streamed ``progress`` lines of a pending sweep.
    progress_interval_s: float = 0.25
    #: TCP port of the Prometheus scrape endpoint (``None`` disables,
    #: ``0`` picks an ephemeral port).
    metrics_port: "int | None" = None
    #: Directory receiving one merged Chrome trace per request
    #: (``None`` disables request tracing entirely — the default, so an
    #: untraced daemon pays nothing).
    trace_dir: "str | None" = None

    def executor_config(self) -> ExecutorConfig:
        return ExecutorConfig(
            timeout_s=self.timeout_s,
            retries=self.retries,
            isolation=self.isolation,
            faults=dict(self.faults),
            workers=self.workers,
            steal_seed=self.steal_seed,
        )


@dataclass
class _RequestTrace:
    """Per-request tracing state while a traced request is in flight."""

    #: The request's tracer; pool threads bind it via scoped_tracer().
    tracer: Tracer
    #: Context handed to executions: parent_span = the request span.
    context: TraceContext
    #: Span id of the ``serve.<op>`` request span.
    root_span: str
    #: Monotonic per-daemon sequence number (names the trace file).
    seq: int


class BenchService:
    """One daemon instance: socket front end + cache + stealing pool."""

    def __init__(self, config: ServeConfig):
        self.config = config
        self.store = RunStore(config.store_path)
        self.cache = ResultCache(self.store)  # raises on a stale store
        self.runner = CaseRunner(config.executor_config())
        self._store_lock = threading.Lock()
        self.scheduler = StealScheduler(
            self._execute_case,
            workers=config.workers,
            steal_seed=config.steal_seed,
        )
        self.metrics = get_metrics()
        self._stop = None  # asyncio.Event, created inside run()
        self._loop = None
        self._server = None
        self._connections = set()  # live (task, writer) pairs
        self._metrics_server = None
        #: Actual Prometheus endpoint port once bound (ephemeral-capable).
        self.metrics_port_bound: "int | None" = None
        self._log = get_logger("repro.serve")
        #: fingerprint -> (_RequestTrace, submit perf_counter) while a
        #: traced sweep's cases are in flight; read by pool threads.
        self._trace_routes: dict = {}
        self._trace_seq = 0
        self._started_monotonic: "float | None" = None

    # ------------------------------------------------------------------ #
    # execution (pool threads)
    # ------------------------------------------------------------------ #
    def _execute_case(self, case) -> bool:
        """Pool callback: run, journal, cache — in that order.

        The cache absorbs the journal line *before* this returns, i.e.
        before the scheduler removes the fingerprint from its live map —
        so at every instant a submitted fingerprint is a cache hit, an
        in-flight coalesce, or a fresh queue: never silently lost.

        When the fingerprint was registered by a traced request, the
        request's tracer and context bind to this pool thread for the
        duration, so the case/worker spans land in that request's trace.
        A coalesced case traces to whichever request queued it first.
        """
        route = self._trace_routes.get(case.fingerprint)
        if route is None:
            outcome = self.runner.run_case(
                case, self.store, store_lock=self._store_lock
            )
        else:
            rctx, t_submit = route
            with scoped_tracer(rctx.tracer), activate_context(rctx.context):
                with rctx.tracer.span(
                    "sched.execute",
                    cat=CAT_SCHED,
                    fingerprint=case.fingerprint,
                    wait_s=round(time.perf_counter() - t_submit, 6),
                ):
                    outcome = self.runner.run_case(
                        case, self.store, store_lock=self._store_lock
                    )
        self.cache.add(outcome.line)
        if not outcome.completed:
            self.metrics.inc("serve.quarantined")
            self._log.warn(
                "case.quarantined", fingerprint=case.fingerprint
            )
        return outcome.completed

    # ------------------------------------------------------------------ #
    # request handlers (asyncio)
    # ------------------------------------------------------------------ #
    async def _handle_sweep(self, params: dict, send, rctx=None) -> dict:
        scale = float(params.get("scale", 1000.0))
        seed = int(params.get("seed", 0))
        runner_config = RunnerConfig(
            rank=int(params.get("rank", 16)),
            measure_host=False,  # serving requires deterministic records
            cache_scale=scale,
            seed=seed,
        )
        cases = await asyncio.to_thread(
            build_sweep_cases,
            dataset=params.get("dataset", "synthetic"),
            scale=scale,
            seed=seed,
            keys=params.get("tensors"),
            platforms=tuple(params.get("platforms", ("Bluesky",))),
            config=runner_config,
        )
        # Route this request's tracer to the pool threads that will
        # execute its cases — registered *before* submit so no case can
        # start untraced; unregistered in the finally (own entries only,
        # so a concurrent request's routes survive).
        registered = []
        if rctx is not None:
            t_submit = time.perf_counter()
            for case in cases:
                if case.fingerprint not in self._trace_routes:
                    self._trace_routes[case.fingerprint] = (rctx, t_submit)
                    registered.append(case.fingerprint)
        try:
            # Hits / coalesces / queues classify atomically under the
            # scheduler lock (the cache probe runs inside submit), so a
            # case completing concurrently is a hit, never a duplicate
            # execution.
            ticket = self.scheduler.submit(cases, completed=self.cache.has)
            self.metrics.inc("serve.cache_hits", len(ticket.hits))
            self.metrics.inc(
                "serve.cache_misses", len(ticket.coalesced) + len(ticket.queued)
            )
            self.metrics.inc("serve.coalesced", len(ticket.coalesced))
            self.metrics.inc("serve.executed", len(ticket.queued))
            while True:
                finished = await asyncio.to_thread(
                    ticket.wait, self.config.progress_interval_s
                )
                if finished:
                    break
                await send(
                    {
                        "total": ticket.total,
                        "hits": len(ticket.hits),
                        "done": ticket.done_count(),
                        "pending": ticket.pending_count(),
                    }
                )
            completed, quarantined, records = [], [], []
            for fp in ticket.fingerprints:
                line = self.cache.lookup(fp)
                if line is not None:
                    completed.append(fp)
                    records.append(line["record"])
                else:
                    quarantined.append(fp)
            return {
                "total": ticket.total,
                "hits": len(ticket.hits),
                "misses": len(ticket.coalesced) + len(ticket.queued),
                "coalesced": len(ticket.coalesced),
                "executed": len(ticket.queued),
                "completed": completed,
                "quarantined": quarantined,
                "fingerprints": list(ticket.fingerprints),
                "records": records,
            }
        finally:
            for fp in registered:
                entry = self._trace_routes.get(fp)
                if entry is not None and entry[0] is rctx:
                    self._trace_routes.pop(fp, None)

    async def _handle_report(self, params: dict, send, rctx=None) -> dict:
        from repro.bench.report import build_report

        fmt = params.get("format", "text")
        records = self.cache.perf_records()
        report = await asyncio.to_thread(build_report, records)
        body = report.as_dict() if fmt == "json" else report.render(fmt)
        return {"format": fmt, "nrecords": len(records), "report": body}

    async def _handle_regress(self, params: dict, send, rctx=None) -> dict:
        from repro.bench.regress import compare_paths

        report = await asyncio.to_thread(
            compare_paths,
            params["baseline"],
            self.store.path,
            threshold=float(params.get("threshold", 1.05)),
            confidence=float(params.get("confidence", 0.95)),
            resamples=int(params.get("resamples", 1000)),
            min_pairs=int(params.get("min_pairs", 2)),
            seed=int(params.get("seed", 0)),
        )
        return {
            "baseline": params["baseline"],
            "candidate": self.store.path,
            "exit_code": report.exit_code,
            "report": report.as_dict(),
        }

    async def _handle_status(self, params: dict, send, rctx=None) -> dict:
        from repro.bench.runner import fingerprint_schema_version

        nrecords, nquarantined = self.cache.counts()
        return {
            "protocol": protocol.PROTOCOL_VERSION,
            "store": self.store.path,
            "fingerprint_schema": fingerprint_schema_version(),
            "records": nrecords,
            "quarantined": nquarantined,
            "inflight": self.scheduler.inflight(),
            "workers": self.config.workers,
            "isolation": self.config.isolation,
            "counters": self.metrics.counter_totals(prefix="serve."),
        }

    async def _handle_health(self, params: dict, send, rctx=None) -> dict:
        nrecords, nquarantined = self.cache.counts()
        counters = self.metrics.counter_totals(prefix="serve.")
        hits = counters.get("serve.cache_hits", 0.0)
        misses = counters.get("serve.cache_misses", 0.0)
        lookups = hits + misses
        live = self.scheduler.inflight()
        queued = self.scheduler.queued()
        hist = self.metrics.as_dict()["histograms"].get(
            "serve.request_seconds", ()
        )
        quantiles = self.metrics.histogram_quantiles("serve.request_seconds")
        uptime = (
            0.0
            if self._started_monotonic is None
            else time.monotonic() - self._started_monotonic
        )
        return {
            "protocol": protocol.PROTOCOL_VERSION,
            "uptime_s": round(uptime, 3),
            "store": self.store.path,
            "records": nrecords,
            "quarantined": nquarantined,
            "inflight": max(0, live - queued),
            "queued": queued,
            "workers": self.config.workers,
            "steals": int(counters.get("serve.steals", 0.0)),
            "requests": int(counters.get("serve.requests", 0.0)),
            "errors": int(counters.get("serve.errors", 0.0)),
            "cache_hits": int(hits),
            "cache_misses": int(misses),
            # null, not a fake 0.0, before the first sweep touches the
            # cache (same convention as the stats helpers).
            "cache_hit_rate": (hits / lookups) if lookups else None,
            "request_seconds": {
                "count": int(sum(s["count"] for s in hist)),
                "sum": round(float(sum(s["sum"] for s in hist)), 6),
                **(quantiles or {"p50": None, "p95": None, "p99": None}),
            },
        }

    _HANDLERS = {
        protocol.OP_SWEEP: _handle_sweep,
        protocol.OP_REPORT: _handle_report,
        protocol.OP_REGRESS: _handle_regress,
        protocol.OP_STATUS: _handle_status,
        protocol.OP_HEALTH: _handle_health,
    }

    # ------------------------------------------------------------------ #
    # connection plumbing
    # ------------------------------------------------------------------ #
    def _request_trace(self, request: dict) -> "_RequestTrace | None":
        """Tracing state for one request, or ``None`` when disabled.

        With ``trace_dir`` set every request is traced: a client-provided
        context (the optional ``trace`` request field) joins the client's
        trace_id; without one the daemon mints a fresh id, so plain
        clients still produce complete merged traces.
        """
        if self.config.trace_dir is None:
            return None
        raw = request.get("trace")
        ctx = (
            TraceContext.from_dict(raw)
            if raw
            else TraceContext(trace_id=new_trace_id())
        )
        self._trace_seq += 1
        seq = self._trace_seq
        root_span = derive_span_id(ctx.trace_id, "request", seq, request["id"])
        tracer = Tracer(
            trace_id=ctx.trace_id,
            meta={"process": "daemon", "parent_span": ctx.parent_span},
        )
        return _RequestTrace(
            tracer=tracer, context=ctx.child(root_span),
            root_span=root_span, seq=seq,
        )

    def _write_trace(self, op: str, rctx: _RequestTrace) -> str:
        os.makedirs(self.config.trace_dir, exist_ok=True)
        trace = rctx.tracer.freeze()
        doc = merge_traces(trace, trace_id=rctx.tracer.trace_id)
        path = os.path.join(
            self.config.trace_dir,
            f"req-{rctx.seq:06d}-{op}-{rctx.tracer.trace_id}.json",
        )
        with open(path, "w") as f:
            json.dump(doc, f, indent=1)
            f.write("\n")
        return path

    async def _dispatch(self, request: dict, send) -> None:
        rid, op = request["id"], request["op"]
        self.metrics.inc("serve.requests", op=op)
        t0 = time.perf_counter()
        rctx = self._request_trace(request)
        ok = True

        async def send_progress(payload):
            await send(
                protocol.make_response(rid, protocol.KIND_PROGRESS, payload)
            )

        try:
            handler = self._HANDLERS[op]
            if rctx is None:
                payload = await handler(self, request["params"], send_progress)
            else:
                with rctx.tracer.span(
                    f"serve.{op}",
                    cat=CAT_REQUEST,
                    id=rid,
                    op=op,
                    span_id=rctx.root_span,
                ):
                    payload = await handler(
                        self, request["params"], send_progress, rctx
                    )
            await send(
                protocol.make_response(rid, protocol.KIND_RESULT, payload)
            )
        except Exception as exc:  # noqa: BLE001 - reported on the wire
            ok = False
            self.metrics.inc("serve.errors", op=op)
            self._log.error(
                "request.failed", op=op, id=rid,
                error=f"{type(exc).__name__}: {exc}",
            )
            await send(
                protocol.error_response(rid, f"{type(exc).__name__}: {exc}")
            )
        finally:
            elapsed = time.perf_counter() - t0
            self.metrics.observe("serve.request_seconds", elapsed, op=op)
            self._log.info(
                "request", op=op, id=rid, ok=ok, elapsed_s=round(elapsed, 6),
                **(
                    {"request_trace_id": rctx.tracer.trace_id}
                    if rctx is not None
                    else {}
                ),
            )
            if rctx is not None:
                try:
                    path = await asyncio.to_thread(self._write_trace, op, rctx)
                    self._log.debug("trace.written", path=path, op=op, id=rid)
                except OSError as exc:
                    self._log.error("trace.write_failed", error=str(exc))

    async def _client_connected(self, reader, writer) -> None:
        conn = (asyncio.current_task(), writer)
        self._connections.add(conn)
        self._log.debug("client.connected", connections=len(self._connections))
        write_lock = asyncio.Lock()
        inflight = set()

        async def send(obj: dict) -> None:
            async with write_lock:
                writer.write(protocol.encode(obj))
                await writer.drain()

        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                if not line.strip():
                    continue
                try:
                    request = protocol.validate_request(protocol.decode(line))
                except protocol.ProtocolError as exc:
                    self.metrics.inc("serve.errors", op="protocol")
                    rid = "?"
                    try:
                        rid = str(protocol.decode(line).get("id", "?"))
                    except protocol.ProtocolError:
                        pass
                    await send(protocol.error_response(rid, str(exc)))
                    continue
                task = asyncio.ensure_future(self._dispatch(request, send))
                inflight.add(task)
                task.add_done_callback(inflight.discard)
        finally:
            self._connections.discard(conn)
            self._log.debug(
                "client.disconnected", connections=len(self._connections)
            )
            if inflight:
                await asyncio.gather(*inflight, return_exceptions=True)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError, asyncio.CancelledError):
                pass

    async def _metrics_scrape(self, reader, writer) -> None:
        """Minimal HTTP/1.0 Prometheus scrape endpoint (GET anything)."""
        try:
            while True:
                line = await reader.readline()
                if line in (b"", b"\r\n", b"\n"):
                    break
            body = self.metrics.render_prometheus().encode("utf-8")
            writer.write(
                b"HTTP/1.0 200 OK\r\n"
                b"Content-Type: text/plain; version=0.0.4\r\n"
                + f"Content-Length: {len(body)}\r\n\r\n".encode("ascii")
                + body
            )
            await writer.drain()
        finally:
            writer.close()

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def stop(self) -> None:
        """Ask the serve loop to exit (thread/signal-safe once running)."""
        if self._stop is not None and self._loop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)

    async def run(self, ready=None) -> None:
        """Serve until stopped; ``ready`` (a callable) fires once bound."""
        self._stop = asyncio.Event()
        self._loop = asyncio.get_running_loop()
        self._started_monotonic = time.monotonic()
        self.scheduler.start()
        sock = self.config.socket_path
        os.makedirs(os.path.dirname(sock) or ".", exist_ok=True)
        if os.path.exists(sock):
            os.unlink(sock)  # stale socket from a killed daemon
        self._server = await asyncio.start_unix_server(
            self._client_connected, path=sock
        )
        if self.config.metrics_port is not None:
            self._metrics_server = await asyncio.start_server(
                self._metrics_scrape, host="127.0.0.1",
                port=self.config.metrics_port,
            )
            self.metrics_port_bound = self._metrics_server.sockets[0].getsockname()[1]
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(sig, self._stop.set)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass
        if ready is not None:
            ready()
        self._log.info(
            "daemon.started",
            socket=sock,
            store=self.store.path,
            workers=self.config.workers,
            isolation=self.config.isolation,
            trace_dir=self.config.trace_dir,
        )
        try:
            await self._stop.wait()
        finally:
            self._log.info("daemon.stopping")
            self._server.close()
            await self._server.wait_closed()
            if self._metrics_server is not None:
                self._metrics_server.close()
                await self._metrics_server.wait_closed()
            # Drain open connections instead of letting loop teardown
            # cancel their handler tasks mid-await: closing the writer
            # EOFs the reader, so each handler exits its read loop.
            for task, writer in list(self._connections):
                writer.close()
            tasks = [task for task, _ in self._connections]
            if tasks:
                await asyncio.wait(tasks, timeout=10)
            self.scheduler.shutdown()
            if os.path.exists(sock):
                os.unlink(sock)

    def serve_forever(self, ready=None) -> None:
        """Blocking entry point (the ``repro serve`` CLI)."""
        asyncio.run(self.run(ready=ready))
