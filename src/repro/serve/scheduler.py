"""Work-stealing case pool with single-flight deduplication.

The statically sharded executor (``index % shards``) balances *counts*,
not *costs*: one straggling case idles its whole shard while the others
finish.  This scheduler replaces static assignment inside a process —
each worker thread owns a deque of cases, drains its own from the head
(FIFO), and when it runs dry steals from a randomly chosen victim's
**tail** (the classic Chase-Lev discipline: owners and thieves touch
opposite ends, so a steal grabs the work the owner would reach last).
Victim selection is seeded per worker via
:func:`repro.bench.runner.derive_case_seed`, keeping runs reproducible.

Results stay bit-identical to a serial run regardless of which worker
executes a case: case seeds derive from fingerprints, never from
execution order (see ``tests/test_property_based.py``).

The second job is **single-flight**: the serve daemon submits many
concurrent, often overlapping, sweep requests.  Every in-flight case is
registered in a live map keyed by fingerprint; submitting a fingerprint
that is already in flight *coalesces* onto the existing execution
instead of queueing a duplicate, so a case is executed at most once no
matter how many concurrent requests want it.  ``submit`` classifies
hit/coalesced/queued under the scheduler lock, closing the race where a
case completes between a caller's cache probe and its submission.
"""

from __future__ import annotations

import random
import threading
import time
from collections import deque
from dataclasses import dataclass, field

from repro.bench.runner import derive_case_seed
from repro.obs.registry import get_metrics


class SchedulerError(RuntimeError):
    """Misuse of the stealing pool (not a case failure)."""


@dataclass
class _LiveCase:
    """One in-flight case: queued, possibly stolen, not yet completed."""

    case: object
    fingerprint: str
    done: threading.Event = field(default_factory=threading.Event)
    completed: bool = False
    abandoned: bool = False
    error: "BaseException | None" = None


class SweepTicket:
    """One ``submit`` call's view of its cases' progress.

    ``hits`` were already completed at submit time (pre-satisfied via the
    caller's cache probe), ``coalesced`` attached to executions some
    earlier ticket queued, ``queued`` are executions this ticket owns.
    ``wait`` blocks until every non-hit case reaches a terminal state.
    """

    def __init__(self):
        self.fingerprints: "list[str]" = []
        self.hits: "list[str]" = []
        self.coalesced: "list[str]" = []
        self.queued: "list[str]" = []
        self._entries: "list[_LiveCase]" = []

    @property
    def total(self) -> int:
        return len(self.fingerprints)

    def done_count(self) -> int:
        """Cases in a terminal state (hits count as done)."""
        return len(self.hits) + sum(1 for e in self._entries if e.done.is_set())

    def pending_count(self) -> int:
        return self.total - self.done_count()

    def completed(self) -> "set[str]":
        """Fingerprints that finished successfully (hits included)."""
        done = set(self.hits)
        done.update(
            e.fingerprint
            for e in self._entries
            if e.done.is_set() and e.completed
        )
        return done

    def abandoned(self) -> "set[str]":
        """Fingerprints dropped un-run by a scheduler shutdown."""
        return {e.fingerprint for e in self._entries if e.abandoned}

    def errors(self) -> "list[BaseException]":
        """Exceptions ``run_case`` raised (it normally never raises)."""
        return [e.error for e in self._entries if e.error is not None]

    def wait(self, timeout: "float | None" = None) -> bool:
        """Block until every case is terminal; False on timeout."""
        deadline = None if timeout is None else time.monotonic() + timeout
        for entry in self._entries:
            remaining = (
                None if deadline is None else max(0.0, deadline - time.monotonic())
            )
            if not entry.done.wait(remaining):
                return False
        return True


class StealScheduler:
    """Per-worker deques + tail stealing + a single-flight live map.

    ``run_case`` is any callable ``case -> bool`` (truthy = the case
    completed with a record); the pool imposes no executor coupling, so
    the sweep executor wraps :class:`~repro.bench.executor.CaseRunner`
    and the serve daemon wraps the same runner plus its cache update.
    ``run_case`` runs on pool threads — it must be thread-safe.
    """

    def __init__(self, run_case, workers: int = 2, steal_seed: int = 0):
        if workers < 1:
            raise SchedulerError(f"workers must be >= 1 (got {workers})")
        self._run_case = run_case
        self.workers = int(workers)
        self.steal_seed = int(steal_seed)
        self._cond = threading.Condition()
        self._deques = [deque() for _ in range(self.workers)]
        #: fingerprint -> in-flight entry (queued or executing).
        self._live: "dict[str, _LiveCase]" = {}
        self._next_home = 0
        self._threads: "list[threading.Thread]" = []
        self._stop = False
        self._started = False
        #: Cases migrated off a victim's tail.
        self.steals = 0
        #: run_case invocations (each fingerprint at most once per flight).
        self.executed = 0
        #: Submitted fingerprints that attached to an in-flight execution.
        self.coalesced = 0
        #: run_case completions per worker (stolen work counts for the
        #: thief) — the straggler tests assert on this shape.
        self.completions = [0] * self.workers

    # ------------------------------------------------------------------ #
    def start(self) -> "StealScheduler":
        if self._started:
            raise SchedulerError("scheduler already started")
        self._started = True
        for wid in range(self.workers):
            rng = random.Random(derive_case_seed(self.steal_seed, "steal", wid))
            t = threading.Thread(
                target=self._worker,
                args=(wid, rng),
                name=f"steal-worker-{wid}",
                daemon=True,
            )
            self._threads.append(t)
            t.start()
        return self

    def submit(self, cases, completed=None) -> SweepTicket:
        """Classify and enqueue ``cases``; returns the request's ticket.

        ``completed`` pre-satisfies cache hits: a callable
        ``fingerprint -> truthy`` or a fingerprint container, probed
        **under the scheduler lock** so a case that completed after the
        caller's earlier probe still classifies as a hit rather than
        re-queueing.  Homes round-robin across workers; duplicates within
        one submission coalesce like cross-request duplicates.
        """
        ticket = SweepTicket()
        with self._cond:
            if self._stop:
                raise SchedulerError("scheduler is shut down")
            for case in cases:
                fp = case.fingerprint
                ticket.fingerprints.append(fp)
                if completed is not None and (
                    completed(fp) if callable(completed) else fp in completed
                ):
                    ticket.hits.append(fp)
                    continue
                entry = self._live.get(fp)
                if entry is not None:
                    ticket.coalesced.append(fp)
                    ticket._entries.append(entry)
                    self.coalesced += 1
                    continue
                entry = _LiveCase(case=case, fingerprint=fp)
                self._live[fp] = entry
                self._deques[self._next_home % self.workers].append(entry)
                self._next_home += 1
                ticket.queued.append(fp)
                ticket._entries.append(entry)
            self._cond.notify_all()
        return ticket

    def inflight(self) -> int:
        with self._cond:
            return len(self._live)

    def queued(self) -> int:
        """Cases sitting in worker deques, not yet picked up."""
        with self._cond:
            return sum(len(dq) for dq in self._deques)

    def shutdown(self) -> None:
        """Stop the pool; queued-but-unstarted cases are abandoned.

        Executing cases finish (and their waiters wake); abandoned
        entries wake their waiters with ``completed=False`` and show up
        in :meth:`SweepTicket.abandoned`.  Idempotent.
        """
        with self._cond:
            self._stop = True
            for dq in self._deques:
                while dq:
                    entry = dq.pop()
                    entry.abandoned = True
                    self._live.pop(entry.fingerprint, None)
                    entry.done.set()
            self._cond.notify_all()
        for t in self._threads:
            t.join()
        self._threads = []

    # ------------------------------------------------------------------ #
    def _take(self, wid: int, rng: random.Random) -> "_LiveCase | None":
        """Next entry for worker ``wid``: own head, else a victim's tail.

        Caller holds the lock.
        """
        own = self._deques[wid]
        if own:
            return own.popleft()
        victims = [
            i for i in range(self.workers) if i != wid and self._deques[i]
        ]
        if not victims:
            return None
        rng.shuffle(victims)
        self.steals += 1
        get_metrics().inc("serve.steals", worker=wid)
        return self._deques[victims[0]].pop()

    def _worker(self, wid: int, rng: random.Random) -> None:
        while True:
            with self._cond:
                entry = self._take(wid, rng)
                while entry is None:
                    if self._stop:
                        return
                    self._cond.wait()
                    entry = self._take(wid, rng)
            ok, error = False, None
            try:
                ok = bool(self._run_case(entry.case))
            except BaseException as exc:  # noqa: BLE001 - surfaced on ticket
                error = exc
            with self._cond:
                entry.completed = ok
                entry.error = error
                # Terminal state is published (and the live map cleared)
                # only *after* run_case returned — the executor/daemon
                # closures journal and cache the record first, so a
                # fingerprint leaving the live map is always findable in
                # the cache: no hit/coalesce/queue gap.
                self._live.pop(entry.fingerprint, None)
                self.executed += 1
                self.completions[wid] += 1
                entry.done.set()
                self._cond.notify_all()
