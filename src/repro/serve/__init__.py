"""Benchmark-as-a-service: cache-front daemon over the sweep executor.

The executor layer (PR 4) made every sweep case a stable fingerprint
journaled in an append-only run store; this package turns those
primitives into a *serving* system, where most traffic is an O(1) cache
hit over previously measured cases:

* :mod:`repro.serve.protocol` — the versioned JSON-lines wire format
  (``sweep`` / ``report`` / ``regress`` / ``status`` requests, streamed
  ``progress`` lines, one terminal ``result`` or ``error`` per request);
* :mod:`repro.serve.cache` — the fingerprint-keyed result cache layered
  over a validated run store (record-supersedes-quarantine preserved);
* :mod:`repro.serve.scheduler` — the work-stealing pool that executes
  cache-miss cases: per-worker deques, steal-from-victim-tail, and
  single-flight deduplication so concurrent identical requests never
  execute a case twice;
* :mod:`repro.serve.daemon` — the asyncio front end multiplexing many
  concurrent clients over a local socket, journaling through the run
  store (a killed daemon resumes cleanly) and streaming ``serve.*``
  counters through the metrics registry;
* :mod:`repro.serve.client` — sync and asyncio clients plus the
  ``repro client`` CLI surface.
"""

from repro.serve.cache import ResultCache
from repro.serve.client import ServeClient, ServeError, async_request, wait_for_socket
from repro.serve.daemon import BenchService, ServeConfig
from repro.serve.protocol import (
    OPS,
    PROTOCOL_VERSION,
    SERVE_COUNTERS,
    ProtocolError,
    make_request,
    make_response,
    validate_request,
    validate_response,
)
from repro.serve.scheduler import SchedulerError, StealScheduler, SweepTicket

__all__ = [
    "BenchService",
    "OPS",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "ResultCache",
    "SERVE_COUNTERS",
    "SchedulerError",
    "ServeClient",
    "ServeConfig",
    "ServeError",
    "StealScheduler",
    "SweepTicket",
    "async_request",
    "make_request",
    "make_response",
    "validate_request",
    "validate_response",
    "wait_for_socket",
]
