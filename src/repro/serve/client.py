"""Clients of the serve daemon: blocking, asyncio, and readiness probe.

:class:`ServeClient` is the scripting surface (``repro client`` wraps
it): one Unix-socket connection, sequential requests, streamed
``progress`` lines surfaced through a callback.  :func:`async_request`
is the asyncio equivalent used by the concurrency tests to hold many
overlapping requests open at once.  Both raise :class:`ServeError` when
the daemon answers with an ``error`` response.
"""

from __future__ import annotations

import asyncio
import os
import socket
import time

from repro.serve import protocol


class ServeError(RuntimeError):
    """The daemon reported an error for a request."""


def wait_for_socket(path, timeout_s: float = 10.0, interval_s: float = 0.05) -> None:
    """Block until a daemon accepts connections on ``path``.

    The socket file appearing is not enough — a starting (or freshly
    killed) daemon may leave a path that refuses connections — so this
    probes with a real connect until one succeeds.
    """
    deadline = time.monotonic() + timeout_s
    while True:
        if os.path.exists(path):
            probe = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            try:
                probe.connect(path)
                return
            except OSError:
                pass
            finally:
                probe.close()
        if time.monotonic() >= deadline:
            raise ServeError(f"no daemon accepting on {path} after {timeout_s:g}s")
        time.sleep(interval_s)


class ServeClient:
    """One blocking connection to the daemon (context-manager friendly)."""

    def __init__(self, socket_path, timeout_s: "float | None" = None):
        self.socket_path = os.fspath(socket_path)
        self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self._sock.settimeout(timeout_s)
        self._sock.connect(self.socket_path)
        self._file = self._sock.makefile("rb")
        self._next_id = 0

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def request(
        self,
        op: str,
        params: "dict | None" = None,
        on_progress=None,
        trace: "dict | None" = None,
    ) -> dict:
        """Send one request; block to its terminal response.

        Returns the ``result`` payload; ``progress`` payloads stream
        through ``on_progress``; an ``error`` response raises
        :class:`ServeError`.  ``trace`` (a trace-context dict, e.g.
        ``TraceContext(...).to_dict()``) propagates the client's
        trace_id into the daemon's spans.
        """
        self._next_id += 1
        rid = str(self._next_id)
        self._sock.sendall(
            protocol.encode(protocol.make_request(op, params, id=rid, trace=trace))
        )
        while True:
            line = self._file.readline()
            if not line:
                raise ServeError(
                    f"connection to {self.socket_path} closed mid-request"
                )
            response = protocol.validate_response(protocol.decode(line))
            if response["id"] != rid:
                raise ServeError(
                    f"response id {response['id']!r} != request id {rid!r} "
                    f"on a sequential connection"
                )
            if response["kind"] == protocol.KIND_PROGRESS:
                if on_progress is not None:
                    on_progress(response["payload"])
                continue
            if response["kind"] == protocol.KIND_ERROR:
                raise ServeError(response["payload"].get("error", "unknown error"))
            return response["payload"]


async def async_request(
    socket_path,
    op: str,
    params: "dict | None" = None,
    on_progress=None,
    trace: "dict | None" = None,
) -> dict:
    """One request over a fresh asyncio connection (concurrency tests).

    Each call owns its connection, so ``asyncio.gather`` over many calls
    exercises the daemon's multi-client path end to end.
    """
    reader, writer = await asyncio.open_unix_connection(os.fspath(socket_path))
    try:
        writer.write(
            protocol.encode(protocol.make_request(op, params, id="1", trace=trace))
        )
        await writer.drain()
        while True:
            line = await reader.readline()
            if not line:
                raise ServeError(f"connection to {socket_path} closed mid-request")
            response = protocol.validate_response(protocol.decode(line))
            if response["kind"] == protocol.KIND_PROGRESS:
                if on_progress is not None:
                    on_progress(response["payload"])
                continue
            if response["kind"] == protocol.KIND_ERROR:
                raise ServeError(response["payload"].get("error", "unknown error"))
            return response["payload"]
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, BrokenPipeError):
            pass
