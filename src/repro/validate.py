"""Cross-format / cross-kernel consistency checker (suite self-check).

Benchmark suites live or die by comparability: every format and backend
must compute the same numbers.  ``validate_tensor`` runs each kernel in
every applicable representation (COO, HiCOO, CSF, dense reference,
sequential and threaded backends, simulated GPU) on one tensor and
reports any disagreement.  The CLI exposes it as
``python -m repro selfcheck``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.kernels import (
    coo_mttkrp,
    coo_tew,
    coo_ts,
    coo_ttm,
    coo_ttv,
    dense_mttkrp,
    dense_ttm,
    dense_ttv,
    hicoo_mttkrp,
    hicoo_tew,
    hicoo_ts,
    hicoo_ttm,
    hicoo_ttv,
)
from repro.kernels.csf import csf_mttkrp, csf_ttv
from repro.parallel import OpenMPBackend
from repro.sptensor import COOTensor, CSFTensor, HiCOOTensor
from repro.util.prng import rng_from_seed


@dataclass
class CheckResult:
    """Outcome of one consistency check."""

    name: str
    passed: bool
    max_error: float = 0.0
    detail: str = ""


@dataclass
class ValidationReport:
    """All checks for one tensor."""

    tensor: str
    checks: list[CheckResult] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return all(c.passed for c in self.checks)

    def add(self, name: str, got, want, rtol: float, atol: float) -> None:
        got = np.asarray(got, dtype=np.float64)
        want = np.asarray(want, dtype=np.float64)
        if got.shape != want.shape:
            self.checks.append(
                CheckResult(name, False, float("inf"),
                            f"shape {got.shape} vs {want.shape}")
            )
            return
        err = float(np.max(np.abs(got - want))) if got.size else 0.0
        ok = bool(np.allclose(got, want, rtol=rtol, atol=atol))
        self.checks.append(CheckResult(name, ok, err))

    def render(self) -> str:
        lines = [f"selfcheck: {self.tensor}"]
        for c in self.checks:
            mark = "ok " if c.passed else "FAIL"
            lines.append(f"  [{mark}] {c.name:40s} max|err| {c.max_error:.3e} {c.detail}")
        lines.append("PASSED" if self.passed else "FAILED")
        return "\n".join(lines)


def validate_tensor(
    tensor: COOTensor,
    rank: int = 8,
    block_size: int = 16,
    seed: int = 0,
    name: str = "tensor",
    nthreads: int = 4,
    densify_limit: int = 2_000_000,
) -> ValidationReport:
    """Run the full cross-representation consistency matrix on ``tensor``.

    Dense-reference checks are skipped for tensors whose dense form would
    exceed ``densify_limit`` cells (cross-format checks still run).
    """
    report = ValidationReport(name)
    x = tensor.astype(np.float64).coalesce()
    h = HiCOOTensor.from_coo(x, block_size)
    c = CSFTensor.from_coo(x)
    rng = rng_from_seed(seed)
    mats = [rng.random((s, rank)) for s in x.shape]
    vecs = [rng.random(s) for s in x.shape]
    cells = 1
    for s in x.shape:
        cells *= s
    dense = x.to_dense() if cells <= densify_limit else None
    rtol, atol = 1e-6, 1e-9
    be = OpenMPBackend(nthreads=nthreads)
    try:
        # Tew / Ts
        report.add(
            "tew(coo) vs tew(hicoo)",
            hicoo_tew(h, h, "add").to_coo().to_dense()
            if dense is not None
            else hicoo_tew(h, h, "add").values.sum(),
            coo_tew(x, x, "add").to_dense()
            if dense is not None
            else coo_tew(x, x, "add").values.sum(),
            rtol,
            atol,
        )
        report.add(
            "ts(coo) vs ts(hicoo)",
            np.sort(hicoo_ts(h, 1.5, "mul").values),
            np.sort(coo_ts(x, 1.5, "mul").values),
            rtol,
            atol,
        )
        for mode in range(x.nmodes):
            v, u = vecs[mode], mats[mode]
            ttv_coo = coo_ttv(x, v, mode)
            report.add(
                f"ttv mode {mode}: hicoo vs coo",
                np.sort(hicoo_ttv(h, v, mode).values),
                np.sort(ttv_coo.values),
                rtol,
                atol,
            )
            report.add(
                f"ttv mode {mode}: csf vs coo",
                np.sort(csf_ttv(c, v, mode).values),
                np.sort(ttv_coo.values),
                rtol,
                atol,
            )
            report.add(
                f"ttv mode {mode}: omp vs seq",
                np.sort(coo_ttv(x, v, mode, backend=be).values),
                np.sort(ttv_coo.values),
                1e-12,
                1e-14,
            )
            mk_coo = coo_mttkrp(x, mats, mode)
            report.add(
                f"mttkrp mode {mode}: hicoo vs coo",
                hicoo_mttkrp(h, mats, mode),
                mk_coo,
                rtol,
                atol,
            )
            report.add(
                f"mttkrp mode {mode}: csf vs coo",
                csf_mttkrp(c, mats, mode),
                mk_coo,
                rtol,
                atol,
            )
            report.add(
                f"mttkrp mode {mode}: sort vs atomic",
                coo_mttkrp(x, mats, mode, method="sort"),
                mk_coo,
                1e-10,
                1e-12,
            )
            ttm_coo = coo_ttm(x, u, mode)
            report.add(
                f"ttm mode {mode}: hicoo vs coo",
                np.sort(hicoo_ttm(h, u, mode).values.ravel()),
                np.sort(ttm_coo.values.ravel()),
                rtol,
                atol,
            )
            if dense is not None:
                report.add(
                    f"ttv mode {mode}: coo vs dense",
                    ttv_coo.to_dense(),
                    dense_ttv(dense, v, mode),
                    rtol,
                    atol,
                )
                report.add(
                    f"ttm mode {mode}: coo vs dense",
                    ttm_coo.to_dense(),
                    dense_ttm(dense, u, mode),
                    rtol,
                    atol,
                )
                report.add(
                    f"mttkrp mode {mode}: coo vs dense",
                    mk_coo,
                    dense_mttkrp(dense, mats, mode),
                    rtol,
                    atol,
                )
    finally:
        be.shutdown()
    return report
