"""Command-line interface: ``python -m repro`` / ``pasta-bench``.

Subcommands
-----------
``info``      — suite version, platforms, host ERT characterization.
``generate``  — synthesize a tensor (Kronecker / power-law / a Table 2
                surrogate / a Table 3 config) to ``.tns`` or ``.npz``.
``bench``     — reproduce a paper table or figure (``--exp table1 ...
                fig7 observations``), print it, optionally save CSV.
``convert``   — convert a tensor file between ``.tns`` and ``.npz`` and
                print format statistics (COO/HiCOO sizes, block stats).
``trace``     — run one kernel under the span tracer and export a Chrome
                trace plus per-worker busy-time / load-imbalance analytics.
``sweep``     — resilient sharded suite sweep: isolated worker
                subprocess per case, per-case timeout, retry with
                backoff, quarantine, and an append-only JSONL run store
                supporting ``--resume`` and ``--merge``.
``report``    — fold a run store into paper-style Observation 1-5
                tables (GFLOPS ranges, bound-fraction distributions,
                HiCOO-vs-COO ratios) as text, markdown, or JSON.
``regress``   — statistical perf-regression sentinel: compare two run
                stores (or a store vs a committed ``BENCH_*.json``) by
                per-group geomean time ratios with bootstrap CIs; exits
                nonzero on a confident regression.
``serve``     — benchmark-as-a-service daemon on a local socket: answers
                ``sweep``/``report``/``regress``/``status`` requests
                from many concurrent clients, cache hits served straight
                from the run store by case fingerprint, misses executed
                once (single-flight) on a work-stealing pool.
``client``    — send one request to a running ``serve`` daemon and print
                the result payload as JSON (progress lines to stderr);
                ``--trace`` propagates a client-minted trace context so
                the daemon's merged Chrome trace carries one trace_id
                end to end.
``health``    — scrape a running daemon's live health telemetry (uptime,
                cache hit rate, pool state, request latency quantiles).
``metrics``   — dump the metrics registry (Prometheus text or JSON),
                optionally reconstructed from a run store.

Diagnostics throughout go through :mod:`repro.obs.log` (``REPRO_LOG=json|
text|off``) on stderr, so machine-readable stdout (``client``, ``regress
--json``, ``ingest-bench --json``) stays clean under any log mode.
``ingest-bench`` — live FireHose ingestion benchmark: a seeded generator
                races concurrent window ingestion and periodic kernel
                queries; reports throughput, p50/p95/p99 latency, and
                roofline attribution, with optional chaos injection,
                run-store journaling, and bit-exact ``--verify``.
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.obs.log import get_logger

_LOG = get_logger("repro.cli")


def _cmd_info(args) -> int:
    import repro
    from repro.roofline import PLATFORMS, RooflineModel, measure_host

    from repro.compiled import available as compiled_available
    from repro.compiled import default_tier

    print(f"repro {repro.__version__} — parallel sparse tensor benchmark suite")
    print(f"kernels: tew ts ttv ttm mttkrp | formats: coo hicoo ghicoo scoo shicoo csf")
    jit = "numba JIT" if compiled_available() else "fused-NumPy fallback"
    print(f"compiled tier: {jit} (default tier: {default_tier()})")
    print()
    for p in PLATFORMS:
        model = RooflineModel(p)
        print(
            f"  {p.name:8s} {p.processor:24s} peak {p.peak_sp_gflops:>8.0f} GF "
            f"ERT-DRAM {p.ert_dram_bw_gbs:>6.1f} GB/s ridge OI {p.ridge_oi:.2f}"
        )
    if args.ert:
        print("\nhost ERT characterization (NumPy micro-kernels):")
        host = measure_host()
        print(
            f"  GEMM {host.peak_sp_gflops:.1f} GFLOPS, "
            f"triad DRAM {host.ert_dram_bw_gbs:.1f} GB/s, "
            f"LLC/DRAM ratio {host.llc_bw_ratio:.2f}"
        )
    return 0


def _cmd_generate(args) -> int:
    from repro.sptensor import save_npz, write_tns

    if args.kind == "kron":
        from repro.generate import kronecker_tensor

        tensor = kronecker_tensor(args.shape, args.nnz, seed=args.seed)
    elif args.kind == "pl":
        from repro.generate import powerlaw_tensor

        tensor = powerlaw_tensor(
            args.shape, args.nnz, alpha=args.alpha,
            dense_modes=args.dense_modes or (), seed=args.seed,
        )
    elif args.kind == "table3":
        from repro.generate import get_synthetic

        tensor = get_synthetic(args.name).generate(scale=args.scale, seed=args.seed)
    elif args.kind == "table2":
        from repro.datasets import make_surrogate

        tensor = make_surrogate(args.name, scale=args.scale, seed=args.seed)
    else:  # pragma: no cover - argparse restricts choices
        raise ValueError(args.kind)
    out = args.output
    if out.endswith(".npz"):
        save_npz(tensor, out)
    else:
        write_tns(tensor, out)
    print(f"wrote {tensor!r} -> {out}")
    return 0


def _cmd_bench(args) -> int:
    from repro.bench import EXPERIMENTS

    kwargs = {"scale": args.scale}
    if args.exp in ("fig4", "fig5", "fig6", "fig7"):
        kwargs["dataset"] = args.dataset
        kwargs["seed"] = args.seed
        if args.tensors:
            kwargs["keys"] = args.tensors
    tracer = None
    if args.trace:
        from repro.obs import Tracer

        tracer = Tracer(meta={"exp": args.exp, "scale": args.scale}).install()
    try:
        report = EXPERIMENTS[args.exp](**kwargs)
    finally:
        if tracer is not None:
            tracer.uninstall()
    if args.chart and report.records:
        print(report.render_chart())
    else:
        print(report.render())
    if args.csv:
        os.makedirs(os.path.dirname(args.csv) or ".", exist_ok=True)
        report.save_csv(args.csv)
        print(f"\nsaved CSV -> {args.csv}")
    if tracer is not None:
        from repro.obs import save_chrome

        os.makedirs(os.path.dirname(args.trace) or ".", exist_ok=True)
        trace = tracer.freeze()
        save_chrome(trace, args.trace)
        print(f"saved Chrome trace ({len(trace.events)} events) -> {args.trace}")
    return 0


def _cmd_sweep(args) -> int:
    import json

    from repro.bench import (
        ExecutorConfig,
        RunnerConfig,
        RunStore,
        SuiteExecutor,
        build_sweep_cases,
        merge_stores,
    )
    from repro.metrics.perf import PERF_HEADERS
    from repro.util.tables import render_table

    def show_state(state, title):
        records = state.perf_records()
        if records:
            rows = [r.as_row() for r in records]
            print(render_table(PERF_HEADERS, rows, title=title))
        else:
            print(f"{title}: no records")
        for fp, line in sorted(state.quarantined.items()):
            case = line["case"]
            print(
                f"  quarantined {fp} "
                f"({case['tensor']}/{case['kernel']}/{case['fmt']}"
                f"@{case['platform']}): "
                + "; ".join(f["detail"] for f in line["failures"])
            )
        if state.truncated_lines:
            print(f"  note: {state.truncated_lines} truncated line(s) ignored")

    if args.merge:
        state = merge_stores(args.merge, out_path=args.store)
        print(
            f"merged {len(args.merge)} store(s): {len(state.records)} records, "
            f"{len(state.quarantined)} quarantined -> {args.store}"
        )
        show_state(state, "merged sweep")
        return 1 if (args.strict and state.quarantined) else 0

    store = RunStore(args.store)
    if args.report:
        state = store.load()
        show_state(state, f"sweep store {args.store}")
        return 1 if (args.strict and state.quarantined) else 0

    config = RunnerConfig(
        rank=args.rank,
        measure_host=args.measure_host,
        cache_scale=args.scale,
        seed=args.seed,
    )
    cases = build_sweep_cases(
        dataset=args.dataset,
        scale=args.scale,
        seed=args.seed,
        keys=args.tensors,
        platforms=args.platforms,
        config=config,
    )
    faults = {}
    if args.faults:
        if args.faults.lstrip().startswith("{"):
            faults = json.loads(args.faults)
        else:
            with open(args.faults) as f:
                faults = json.load(f)
    executor = SuiteExecutor(
        cases,
        store,
        ExecutorConfig(
            shards=args.shards,
            shard_index=args.shard_index,
            timeout_s=args.timeout,
            retries=args.retries,
            resume=args.resume,
            isolation=args.isolation,
            faults=faults,
            workers=args.workers,
            steal_seed=args.steal_seed,
        ),
    )
    shard = executor.shard_cases()
    print(
        f"sweep: {len(cases)} case(s) enumerated, "
        f"shard {args.shard_index + 1}/{args.shards} covers {len(shard)}"
    )
    tracer = None
    if args.trace:
        from repro.obs import Tracer
        from repro.obs.context import (
            TraceContext,
            install_context,
            new_trace_id,
        )

        context = TraceContext(trace_id=new_trace_id())
        tracer = Tracer(
            trace_id=context.trace_id,
            meta={"process": "sweep", "shard": args.shard_index},
        ).install()
        prev_context = install_context(context)
    try:
        report = executor.run()
    finally:
        if tracer is not None:
            from repro.obs import merge_traces, save_chrome

            tracer.uninstall()
            install_context(prev_context)
            trace = tracer.freeze()
            os.makedirs(os.path.dirname(args.trace) or ".", exist_ok=True)
            save_chrome(merge_traces(trace), args.trace)
            print(
                f"merged Chrome trace ({1 + len(trace.children)} process(es), "
                f"trace {context.trace_id}) -> {args.trace}"
            )
    print(report.render())
    print(f"run store -> {store.path}")
    if args.metrics:
        from repro.obs import get_metrics

        os.makedirs(os.path.dirname(args.metrics) or ".", exist_ok=True)
        with open(args.metrics, "w") as f:
            f.write(get_metrics().render_prometheus())
        print(f"metrics (Prometheus text) -> {args.metrics}")
    return 1 if (args.strict and report.quarantined) else 0


def _cmd_report(args) -> int:
    from repro.bench.report import report_from_store

    report = report_from_store(args.store)
    if report.nrecords == 0:
        _LOG.error("report.empty_store", store=args.store)
        return 1
    print(report.render(args.format))
    return 0


def _cmd_regress(args) -> int:
    import json

    from repro.bench.regress import RegressError, compare_paths

    try:
        report = compare_paths(
            args.a,
            args.b,
            threshold=args.threshold,
            confidence=args.confidence,
            resamples=args.resamples,
            min_pairs=args.min_pairs,
            seed=args.seed,
        )
    except RegressError as exc:
        _LOG.error("regress.failed", error=str(exc))
        return 2
    if args.json:
        print(json.dumps(report.as_dict(), indent=2, sort_keys=True))
    else:
        print(report.render())
    return report.exit_code


def _cmd_serve(args) -> int:
    import json

    from repro.serve import BenchService, ServeConfig

    faults = {}
    if args.faults:
        if args.faults.lstrip().startswith("{"):
            faults = json.loads(args.faults)
        else:
            with open(args.faults) as f:
                faults = json.load(f)
    service = BenchService(
        ServeConfig(
            socket_path=args.socket,
            store_path=args.store,
            workers=args.workers,
            steal_seed=args.steal_seed,
            isolation=args.isolation,
            timeout_s=args.timeout,
            retries=args.retries,
            faults=faults,
            metrics_port=args.metrics_port,
            trace_dir=args.trace_dir,
        )
    )

    def ready():
        records, quarantined = service.cache.counts()
        print(
            f"serving on {args.socket} (store {args.store}: {records} cached "
            f"record(s), {quarantined} quarantined; {args.workers} worker(s))",
            flush=True,
        )
        if args.trace_dir:
            print(f"request traces -> {args.trace_dir}", flush=True)
        if service.metrics_port_bound is not None:
            print(
                f"metrics (Prometheus) on http://127.0.0.1:"
                f"{service.metrics_port_bound}/metrics",
                flush=True,
            )

    service.serve_forever(ready=ready)
    return 0


def _cmd_client(args) -> int:
    import json

    from repro.serve import ServeError, wait_for_socket
    from repro.serve.client import ServeClient

    params = json.loads(args.params) if args.params else {}
    if args.wait:
        wait_for_socket(args.socket, timeout_s=args.wait)

    trace = None
    if args.trace or args.trace_id:
        from repro.obs.context import TraceContext, new_trace_id

        trace = TraceContext(
            trace_id=args.trace_id or new_trace_id()
        ).to_dict()
        _LOG.info("client.trace", trace_id=trace["trace_id"], op=args.op)

    def on_progress(payload):
        _LOG.info(
            "client.progress", op=args.op, done=payload["done"],
            total=payload["total"], hits=payload["hits"],
            pending=payload["pending"],
        )

    try:
        with ServeClient(args.socket, timeout_s=args.timeout) as client:
            payload = client.request(
                args.op, params, on_progress=on_progress, trace=trace
            )
    except ServeError as exc:
        _LOG.error("client.failed", op=args.op, error=str(exc))
        return 2
    print(json.dumps(payload, indent=2, sort_keys=True))
    # A regress verdict propagates like ``repro regress`` would exit.
    if args.op == "regress":
        return int(payload.get("exit_code", 0))
    return 0


def _cmd_health(args) -> int:
    import json

    from repro.serve import ServeError, wait_for_socket
    from repro.serve.client import ServeClient

    if args.wait:
        wait_for_socket(args.socket, timeout_s=args.wait)
    try:
        with ServeClient(args.socket, timeout_s=args.timeout) as client:
            health = client.request("health")
    except ServeError as exc:
        _LOG.error("health.failed", error=str(exc))
        return 2
    if args.json:
        print(json.dumps(health, indent=2, sort_keys=True))
        return 0

    def pct(v):
        return f"{v * 100.0:.1f}%" if v is not None else "n/a"

    def ms(v):
        return f"{v * 1e3:.2f}ms" if v is not None else "n/a"

    lat = health["request_seconds"]
    print(f"daemon on {args.socket} (protocol v{health['protocol']})")
    print(
        f"  uptime   {health['uptime_s']:.1f}s | store {health['store']}: "
        f"{health['records']} record(s), {health['quarantined']} quarantined"
    )
    print(
        f"  cache    {health['cache_hits']} hit(s) / "
        f"{health['cache_misses']} miss(es) "
        f"(hit rate {pct(health['cache_hit_rate'])})"
    )
    print(
        f"  pool     {health['workers']} worker(s), "
        f"{health['inflight']} in flight, {health['queued']} queued, "
        f"{health['steals']} steal(s)"
    )
    print(
        f"  requests {health['requests']} served, {health['errors']} error(s)"
    )
    print(
        f"  latency  n={lat['count']} p50 {ms(lat['p50'])} "
        f"p95 {ms(lat['p95'])} p99 {ms(lat['p99'])} "
        f"(total {lat['sum']:.3f}s)"
    )
    return 0


def _cmd_metrics(args) -> int:
    import json

    from repro.obs import MetricsRegistry, get_metrics

    registry = get_metrics()
    if args.store:
        # Rebuild sweep counters/latencies from a journal, so the dump
        # works offline (a fresh CLI process has an empty registry).
        from repro.bench import RunStore

        registry = MetricsRegistry()
        state = RunStore(args.store).load()
        for line in state.records.values():
            case = line["case"]
            labels = {
                "kernel": case["kernel"], "fmt": case["fmt"],
                "platform": case["platform"],
            }
            registry.inc("exec.completed", **labels)
            registry.observe(
                "exec.case_seconds", float(line.get("elapsed_s", 0.0)), **labels
            )
        for line in state.quarantined.values():
            case = line["case"]
            registry.inc(
                "exec.quarantined", kernel=case["kernel"], fmt=case["fmt"],
                platform=case["platform"],
            )
    if args.format == "json":
        print(json.dumps(registry.as_dict(), indent=2, sort_keys=True))
    else:
        sys.stdout.write(registry.render_prometheus())
    return 0


def _cmd_convert(args) -> int:
    from repro.sptensor import (
        HiCOOTensor,
        block_stats,
        load_npz,
        read_tns,
        save_npz,
        summarize,
        write_tns,
    )

    tensor = load_npz(args.input) if args.input.endswith(".npz") else read_tns(args.input)
    s = summarize(tensor, os.path.basename(args.input))
    print(
        f"{s.name}: order {s.order}, shape {s.shape}, nnz {s.nnz}, "
        f"density {s.density:.3e}, fibers/mode {s.fibers_per_mode}"
    )
    h = HiCOOTensor.from_coo(tensor, args.block_size)
    bs = block_stats(h)
    print(
        f"COO {tensor.nbytes} B | HiCOO {h.nbytes} B "
        f"(ratio {h.compression_ratio():.2f}, nb {bs.nblocks}, "
        f"alpha {bs.alpha:.2f})"
    )
    if args.output:
        if args.output.endswith(".npz"):
            save_npz(tensor, args.output)
        else:
            write_tns(tensor, args.output)
        print(f"wrote -> {args.output}")
    return 0


def _cmd_trace(args) -> int:
    import numpy as np

    from repro.kernels import (
        coo_mttkrp,
        coo_tew,
        coo_ts,
        coo_ttm,
        coo_ttv,
        hicoo_mttkrp,
        hicoo_tew,
        hicoo_ts,
        hicoo_ttm,
        hicoo_ttv,
    )
    from repro.obs import (
        Tracer,
        analyze,
        flame_summary,
        merge_traces,
        save_chrome,
        write_jsonl,
    )
    from repro.parallel import OpenMPBackend
    from repro.sptensor import HiCOOTensor, load_npz, read_tns
    from repro.util.prng import rng_from_seed

    if args.input:
        coo = (
            load_npz(args.input)
            if args.input.endswith(".npz")
            else read_tns(args.input)
        ).sort()
        name = os.path.basename(args.input)
    else:
        from repro.generate import powerlaw_tensor

        coo = powerlaw_tensor(
            args.shape, args.nnz, dense_modes=(len(args.shape) - 1,),
            seed=args.seed,
        ).sort()
        name = f"powerlaw{tuple(args.shape)}"
    x = coo if args.fmt == "coo" else HiCOOTensor.from_coo(coo, args.block_size)
    rng = rng_from_seed(args.seed)
    mats = [rng.random((s, args.rank)).astype(np.float32) for s in coo.shape]
    vec = rng.random(coo.shape[args.mode]).astype(np.float32)

    backend = OpenMPBackend(nthreads=args.nthreads)
    tier = args.tier
    kernels = {
        "mttkrp": {
            "coo": lambda be: coo_mttkrp(
                coo, mats, args.mode, be,
                method=args.method, schedule=args.schedule, tier=tier,
            ),
            "hicoo": lambda be: hicoo_mttkrp(
                x, mats, args.mode, be,
                method=args.method, schedule=args.schedule, tier=tier,
            ),
        },
        "ttv": {
            "coo": lambda be: coo_ttv(
                coo, vec, args.mode, be, schedule=args.schedule, tier=tier
            ),
            "hicoo": lambda be: hicoo_ttv(
                x, vec, args.mode, be, schedule=args.schedule, tier=tier
            ),
        },
        "ttm": {
            "coo": lambda be: coo_ttm(
                coo, mats[args.mode], args.mode, be,
                schedule=args.schedule, tier=tier,
            ),
            "hicoo": lambda be: hicoo_ttm(
                x, mats[args.mode], args.mode, be,
                schedule=args.schedule, tier=tier,
            ),
        },
        "tew": {
            "coo": lambda be: coo_tew(
                coo, coo, "add", be, assume_same_pattern=True, tier=tier
            ),
            "hicoo": lambda be: hicoo_tew(
                x, x, "add", be, assume_same_pattern=True, tier=tier
            ),
        },
        "ts": {
            "coo": lambda be: coo_ts(coo, 1.5, "mul", be, tier=tier),
            "hicoo": lambda be: hicoo_ts(x, 1.5, "mul", be, tier=tier),
        },
    }
    fn = kernels[args.kernel][args.fmt]
    tracer = Tracer(
        meta={
            "tensor": name,
            "kernel": args.kernel,
            "fmt": args.fmt,
            "nthreads": args.nthreads,
            "schedule": args.schedule,
            "tier": tier or "default",
        }
    )
    try:
        with tracer:
            for _ in range(args.repeats):
                fn(backend)
    finally:
        backend.shutdown()
    trace = tracer.freeze()
    stats = analyze(trace)

    # Stamp roofline attribution onto the kernel spans so the Chrome
    # export shows bound-fraction / boundedness per span.
    from repro.obs import CAT_KERNEL, attach_to_trace, attribute
    from repro.roofline import RooflineModel, get_platform
    from repro.roofline.oi import cost_for, extract_features
    from repro.types import Format, Kernel

    attribution = None
    kernel_spans = trace.spans(CAT_KERNEL)
    if kernel_spans:
        features = extract_features(
            coo, name, args.block_size,
            x if args.fmt == "hicoo" else None,
        )
        cost = cost_for(
            features, Kernel.coerce(args.kernel), Format.coerce(args.fmt),
            args.rank,
        )
        host_s = sum(s.duration_s for s in kernel_spans) / len(kernel_spans)
        attribution = attribute(
            RooflineModel(get_platform(args.platform)), cost, host_s, host_s
        )
        attach_to_trace(trace, attribution)

    print(
        f"traced {args.kernel}/{args.fmt} on {name} "
        f"(nnz {coo.nnz}, {args.nthreads} threads, {args.schedule})"
    )
    print()
    print(stats.render())
    if attribution is not None:
        print()
        print(
            f"roofline ({attribution.platform}): host-time bound fraction "
            f"{attribution.bound_fraction:.3f} of {attribution.bound_gflops:.2f} "
            f"GFLOPS bound, {attribution.boundedness}-bound "
            f"(OI {attribution.oi:.3f} vs ridge {attribution.ridge_oi:.2f}), "
            f"effective DRAM bw {attribution.effective_bw_gbs:.2f} GB/s"
        )
    if args.flame:
        print()
        print(flame_summary(trace))
    os.makedirs(os.path.dirname(args.output) or ".", exist_ok=True)
    save_chrome(merge_traces(trace), args.output)
    print(f"\nsaved Chrome trace ({len(trace.events)} events) -> {args.output}")
    print("  (open in Perfetto / chrome://tracing)")
    if args.jsonl:
        os.makedirs(os.path.dirname(args.jsonl) or ".", exist_ok=True)
        write_jsonl(trace, args.jsonl)
        print(f"saved JSON-lines events -> {args.jsonl}")
    return 0


def _cmd_ingest_bench(args) -> int:
    import json as _json

    from repro.ingest import (
        IngestConfig,
        IngestError,
        run_ingest_bench,
        verify_window_state,
    )
    from repro.obs import Tracer, get_metrics, save_chrome

    config = IngestConfig(
        shape=tuple(args.shape),
        events=args.events,
        batch=args.batch,
        window=args.window,
        workers=args.workers,
        queue_depth=args.queue_depth,
        query_every=args.query_every,
        rank=args.rank,
        alpha=args.alpha,
        seed=args.seed,
        eviction=args.eviction,
        block_size=args.block_size,
        worker_lifetime=args.worker_lifetime,
        platform=args.platform,
        fail_at_batch=args.fail_at_batch,
    )
    query_backend = None
    if args.chaos:
        from repro.parallel import ChaosBackend

        query_backend = ChaosBackend(
            seed=args.chaos_seed, churn=True, failure_rate=args.chaos_fail
        )
    tracer = Tracer(meta={"bench": "ingest", "fingerprint": config.fingerprint})
    rc = 0
    try:
        with tracer:
            result = run_ingest_bench(
                config,
                store=args.store,
                resume=args.resume,
                query_backend=query_backend,
            )
    except IngestError as exc:
        _LOG.error("ingest_bench.failed", error=str(exc))
        if args.store:
            _LOG.warn(
                "ingest_bench.quarantined", store=args.store,
                hint="re-run with --resume to retry and clear it",
            )
        return 1
    finally:
        if args.trace:
            os.makedirs(os.path.dirname(args.trace) or ".", exist_ok=True)
            save_chrome(tracer.freeze(), args.trace)
            _LOG.info("ingest_bench.trace_saved", path=args.trace)
        if args.metrics:
            os.makedirs(os.path.dirname(args.metrics) or ".", exist_ok=True)
            with open(args.metrics, "w") as f:
                f.write(get_metrics().render_prometheus())
            _LOG.info("ingest_bench.metrics_saved", path=args.metrics)
    # In --json mode stdout carries only the JSON document; everything
    # else (verify verdicts, journaling notes) becomes structured log
    # records on stderr so stdout stays machine-readable.
    if args.verify:
        ok, detail = verify_window_state(result)
        if not ok:
            if args.json:
                _LOG.error("ingest_bench.verify_failed", detail=detail)
            else:
                print(f"VERIFY FAILED: window state diverged: {detail}")
            rc = 1
        elif args.json:
            _LOG.info("ingest_bench.verified", detail=detail)
        else:
            print(f"verify: window state matches serial replay — {detail}")
    if args.json:
        print(_json.dumps(result.as_dict(), indent=2, sort_keys=True))
    else:
        print(result.render())
    if args.store:
        if args.json:
            _LOG.info(
                "ingest_bench.journaled",
                records=len(result.records), store=args.store,
            )
        else:
            print(f"journaled {len(result.records)} records -> {args.store}")
    return rc


def _cmd_tune(args) -> int:
    from repro.roofline import get_platform
    from repro.sptensor import load_npz, read_tns
    from repro.tune import recommend_format

    tensor = (
        load_npz(args.input)
        if args.input.endswith(".npz")
        else read_tns(args.input)
    )
    rec = recommend_format(
        tensor, kernels=args.kernels, platform=get_platform(args.platform)
    )
    print(rec)
    return 0


def _cmd_selfcheck(args) -> int:
    from repro.sptensor import COOTensor, load_npz, read_tns
    from repro.validate import validate_tensor

    if args.input:
        tensor = (
            load_npz(args.input)
            if args.input.endswith(".npz")
            else read_tns(args.input)
        )
        name = os.path.basename(args.input)
    else:
        tensor = COOTensor.random(args.shape, args.nnz, rng=args.seed)
        name = f"random{tuple(args.shape)}"
    report = validate_tensor(tensor, name=name, seed=args.seed)
    print(report.render())
    return 0 if report.passed else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="pasta-bench",
        description="Parallel sparse tensor benchmark suite (PPoPP'20 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_info = sub.add_parser("info", help="suite and platform information")
    p_info.add_argument("--ert", action="store_true", help="run host ERT micro-kernels")
    p_info.set_defaults(func=_cmd_info)

    p_gen = sub.add_parser("generate", help="generate a synthetic tensor")
    p_gen.add_argument("--kind", choices=["kron", "pl", "table3", "table2"], required=True)
    p_gen.add_argument("--shape", type=int, nargs="+", help="dimensions (kron/pl)")
    p_gen.add_argument("--nnz", type=int, help="non-zeros (kron/pl)")
    p_gen.add_argument("--alpha", type=float, default=2.0, help="power-law exponent")
    p_gen.add_argument("--dense-modes", type=int, nargs="*", help="uniform modes (pl)")
    p_gen.add_argument("--name", help="registry name for table2/table3 kinds")
    p_gen.add_argument("--scale", type=float, default=1000.0, help="downscale factor")
    p_gen.add_argument("--seed", type=int, default=0)
    p_gen.add_argument("-o", "--output", required=True, help=".tns or .npz path")
    p_gen.set_defaults(func=_cmd_generate)

    p_bench = sub.add_parser("bench", help="reproduce a paper table/figure")
    p_bench.add_argument(
        "--exp",
        required=True,
        choices=[
            "table1", "table2", "table3", "table4",
            "fig3", "fig4", "fig5", "fig6", "fig7", "observations",
            "sweep-nnz", "sweep-rank", "sweep-density", "sweep-blocksize",
        ],
    )
    p_bench.add_argument("--scale", type=float, default=1000.0)
    p_bench.add_argument("--dataset", choices=["real", "synthetic", "both"], default="both")
    p_bench.add_argument("--tensors", nargs="*", help="restrict to these tensors")
    p_bench.add_argument("--seed", type=int, default=0)
    p_bench.add_argument("--csv", help="also save the rows to this CSV path")
    p_bench.add_argument(
        "--chart", action="store_true",
        help="render performance figures as ASCII bar charts",
    )
    p_bench.add_argument(
        "--trace", metavar="PATH",
        help="record a span trace of the experiment and save it in Chrome "
        "trace-event format to PATH",
    )
    p_bench.set_defaults(func=_cmd_bench)

    p_trace = sub.add_parser(
        "trace",
        help="run one kernel under the span tracer; export a Chrome trace "
        "and print per-worker busy time / load imbalance",
    )
    p_trace.add_argument("input", nargs="?", help=".tns/.npz file (optional)")
    p_trace.add_argument(
        "--kernel", default="mttkrp",
        choices=["tew", "ts", "ttv", "ttm", "mttkrp"],
    )
    p_trace.add_argument("--fmt", choices=["coo", "hicoo"], default="coo")
    p_trace.add_argument("--mode", type=int, default=0)
    p_trace.add_argument("--rank", type=int, default=16)
    p_trace.add_argument(
        "--method", default="atomic", choices=["atomic", "sort", "owner"],
        help="Mttkrp scatter method",
    )
    p_trace.add_argument("--nthreads", type=int, default=4)
    p_trace.add_argument(
        "--schedule", default="dynamic",
        choices=["static", "dynamic", "guided"],
    )
    p_trace.add_argument("--block-size", type=int, default=128)
    p_trace.add_argument(
        "--tier", default=None, choices=["numpy", "compiled", "auto"],
        help="execution tier (default: REPRO_COMPILED-gated resolution)",
    )
    p_trace.add_argument("--repeats", type=int, default=1)
    p_trace.add_argument(
        "--platform", default="Bluesky",
        help="paper platform whose roofline attributes the kernel spans",
    )
    p_trace.add_argument("--shape", type=int, nargs="+", default=[500, 400, 30])
    p_trace.add_argument("--nnz", type=int, default=20000)
    p_trace.add_argument("--seed", type=int, default=0)
    p_trace.add_argument(
        "-o", "--output", default="trace.json",
        help="Chrome trace-event JSON output path",
    )
    p_trace.add_argument("--jsonl", help="also write raw events as JSON lines")
    p_trace.add_argument(
        "--flame", action="store_true",
        help="print a folded-stack flame summary",
    )
    p_trace.set_defaults(func=_cmd_trace)

    p_ingest = sub.add_parser(
        "ingest-bench",
        help="live streaming-ingestion benchmark: seeded generator vs "
        "concurrent window ingestion vs periodic kernel queries, with "
        "backpressure, churn, chaos, and run-store journaling",
    )
    p_ingest.add_argument(
        "--shape", type=int, nargs="+", default=[512, 512, 16]
    )
    p_ingest.add_argument(
        "--events", type=int, default=100_000,
        help="total events the generator emits",
    )
    p_ingest.add_argument(
        "--batch", type=int, default=4096, help="events per batch"
    )
    p_ingest.add_argument(
        "--window", type=int, default=8, help="live window length in batches"
    )
    p_ingest.add_argument(
        "--workers", type=int, default=4, help="concurrent ingest workers"
    )
    p_ingest.add_argument(
        "--queue-depth", type=int, default=8,
        help="bounded generator queue depth (backpressure bound)",
    )
    p_ingest.add_argument(
        "--query-every", type=int, default=8,
        help="batches between query rounds (0 disables queries)",
    )
    p_ingest.add_argument("--rank", type=int, default=8)
    p_ingest.add_argument("--alpha", type=float, default=2.0)
    p_ingest.add_argument("--seed", type=int, default=0)
    p_ingest.add_argument(
        "--eviction", choices=["exact", "subtract"], default="exact",
        help="window eviction mode (exact = bit-exact structural rebuild; "
        "subtract = historical lossy fast path)",
    )
    p_ingest.add_argument("--block-size", type=int, default=32)
    p_ingest.add_argument(
        "--worker-lifetime", type=int, default=0,
        help="batches per worker before it retires and a replacement "
        "spawns (worker churn; 0 = stable workers)",
    )
    p_ingest.add_argument("--platform", default="Bluesky")
    p_ingest.add_argument(
        "--chaos", action="store_true",
        help="run queries on a ChaosBackend (adversarial scheduling plus "
        "injected query failures)",
    )
    p_ingest.add_argument("--chaos-fail", type=float, default=0.0)
    p_ingest.add_argument("--chaos-seed", type=int, default=0)
    p_ingest.add_argument(
        "--fail-at-batch", type=int, default=0,
        help="inject an ingest failure at this 1-based batch (CI smoke)",
    )
    p_ingest.add_argument(
        "--store", help="journal PerfRecords to this run-store JSONL"
    )
    p_ingest.add_argument(
        "--resume", action="store_true",
        help="serve a completed scenario from --store without re-running",
    )
    p_ingest.add_argument(
        "--verify", action="store_true",
        help="check the final window against a serial replay "
        "(bit-exact under exact eviction); exit 1 on divergence",
    )
    p_ingest.add_argument("--trace", help="write a Chrome trace to PATH")
    p_ingest.add_argument(
        "--metrics", help="write the metrics registry (Prometheus text) to PATH"
    )
    p_ingest.add_argument(
        "--json", action="store_true", help="print the full result as JSON"
    )
    p_ingest.set_defaults(func=_cmd_ingest_bench)

    p_sweep = sub.add_parser(
        "sweep",
        help="resilient sharded suite sweep: per-case worker subprocesses, "
        "timeout, retry/quarantine, JSONL checkpoint store with resume/merge",
    )
    p_sweep.add_argument(
        "--dataset", choices=["real", "synthetic", "both"], default="synthetic"
    )
    p_sweep.add_argument(
        "--tensors", nargs="*",
        help="restrict to these registry keys/names (r1.., s1.., vast, irrS, ...)",
    )
    p_sweep.add_argument("--platforms", nargs="+", default=["Bluesky"])
    p_sweep.add_argument("--scale", type=float, default=1000.0)
    p_sweep.add_argument("--seed", type=int, default=0)
    p_sweep.add_argument("--rank", type=int, default=16)
    p_sweep.add_argument(
        "--shards", type=int, default=1,
        help="partition the case list into this many disjoint shards",
    )
    p_sweep.add_argument(
        "--shard-index", type=int, default=0,
        help="which shard this invocation runs (0-based)",
    )
    p_sweep.add_argument(
        "--timeout", type=float, default=120.0,
        help="per-case wall-clock budget in seconds (worker is killed past it)",
    )
    p_sweep.add_argument(
        "--retries", type=int, default=2,
        help="re-attempts (exponential backoff) before quarantining a case",
    )
    p_sweep.add_argument(
        "--workers", type=int, default=1,
        help="concurrent case workers inside this shard (> 1 enables the "
        "work-stealing pool; records stay bit-identical to --workers 1)",
    )
    p_sweep.add_argument(
        "--steal-seed", type=int, default=0,
        help="seed of the stealing pool's victim-selection RNGs",
    )
    p_sweep.add_argument(
        "--resume", action="store_true",
        help="skip cases already journaled in --store",
    )
    p_sweep.add_argument(
        "--store", default="results/sweep.jsonl",
        help="append-only JSONL run store (checkpoint journal)",
    )
    p_sweep.add_argument(
        "--isolation", choices=["process", "inline"], default="process",
        help="process = worker subprocess per case (default); inline = in-process",
    )
    p_sweep.add_argument(
        "--faults", metavar="JSON",
        help="fault-injection table (inline JSON object or a path to one) "
        "for resilience testing/CI smoke",
    )
    p_sweep.add_argument(
        "--measure-host", action="store_true",
        help="also measure host wall-clock (off by default: nondeterministic "
        "timings break shard/resume record equality)",
    )
    p_sweep.add_argument(
        "--merge", nargs="+", metavar="STORE",
        help="merge these shard stores into --store and print the report",
    )
    p_sweep.add_argument(
        "--report", action="store_true",
        help="print the report of an existing --store without running",
    )
    p_sweep.add_argument(
        "--strict", action="store_true",
        help="exit 1 if any case is quarantined",
    )
    p_sweep.add_argument(
        "--metrics", metavar="PATH",
        help="after the run, write the metrics registry (Prometheus text) "
        "to PATH",
    )
    p_sweep.add_argument(
        "--trace", metavar="PATH",
        help="run the sweep under a minted trace context and write one "
        "merged Chrome trace (parent + adopted worker-subprocess spans) "
        "to PATH",
    )
    p_sweep.set_defaults(func=_cmd_sweep)

    p_report = sub.add_parser(
        "report",
        help="fold a run store into paper-style Observation 1-5 tables",
    )
    p_report.add_argument(
        "--store", required=True,
        help="run-store JSONL journal to report on",
    )
    p_report.add_argument(
        "--format", choices=["text", "markdown", "json"], default="text",
    )
    p_report.set_defaults(func=_cmd_report)

    p_regress = sub.add_parser(
        "regress",
        help="compare two measurement sources (run stores or BENCH_*.json) "
        "per (kernel, fmt, method) group; exit nonzero on a confident "
        "regression",
    )
    p_regress.add_argument("a", help="baseline source (run store or BENCH json)")
    p_regress.add_argument("b", help="candidate source (run store or BENCH json)")
    p_regress.add_argument(
        "--threshold", type=float, default=1.05,
        help="geomean-ratio band edge: regressed if the CI sits wholly "
        "above this (default 1.05 = 5%% slower)",
    )
    p_regress.add_argument(
        "--confidence", type=float, default=0.95,
        help="bootstrap confidence level (default 0.95)",
    )
    p_regress.add_argument(
        "--resamples", type=int, default=1000,
        help="bootstrap resamples per group (default 1000)",
    )
    p_regress.add_argument(
        "--min-pairs", type=int, default=2,
        help="fewer matched pairs than this = insufficient-data (never gates)",
    )
    p_regress.add_argument("--seed", type=int, default=0, help="bootstrap RNG seed")
    p_regress.add_argument(
        "--json", action="store_true", help="emit the full report as JSON"
    )
    p_regress.set_defaults(func=_cmd_regress)

    p_serve = sub.add_parser(
        "serve",
        help="benchmark-as-a-service daemon: fingerprint-keyed result "
        "cache over a run store, single-flight deduplication, and a "
        "work-stealing execution pool behind a local-socket JSON-lines "
        "protocol",
    )
    p_serve.add_argument(
        "--socket", required=True, help="Unix socket path to listen on"
    )
    p_serve.add_argument(
        "--store", default="results/serve.jsonl",
        help="run-store JSONL journal backing the result cache",
    )
    p_serve.add_argument(
        "--workers", type=int, default=2,
        help="work-stealing pool width for cache-miss execution",
    )
    p_serve.add_argument("--steal-seed", type=int, default=0)
    p_serve.add_argument(
        "--isolation", choices=["process", "inline"], default="inline",
        help="per-case isolation of executed cases (inline default: the "
        "daemon is long-lived and local)",
    )
    p_serve.add_argument("--timeout", type=float, default=120.0)
    p_serve.add_argument("--retries", type=int, default=2)
    p_serve.add_argument(
        "--faults", metavar="JSON",
        help="fault-injection table (inline JSON or a path), as for sweep",
    )
    p_serve.add_argument(
        "--metrics-port", type=int, default=None,
        help="expose Prometheus metrics over HTTP on this TCP port "
        "(0 = ephemeral)",
    )
    p_serve.add_argument(
        "--trace-dir", metavar="DIR",
        help="trace every request and write one merged Chrome trace "
        "(daemon + scheduler + worker-subprocess spans) per request "
        "into DIR",
    )
    p_serve.set_defaults(func=_cmd_serve)

    p_client = sub.add_parser(
        "client",
        help="send one request to a running serve daemon; prints the "
        "result payload as JSON (progress to stderr)",
    )
    p_client.add_argument(
        "--socket", required=True, help="Unix socket of the daemon"
    )
    p_client.add_argument(
        "op", choices=["sweep", "report", "regress", "status", "health"],
    )
    p_client.add_argument(
        "--trace", action="store_true",
        help="mint a trace context and send it with the request, so a "
        "daemon running --trace-dir folds this request into one "
        "client-correlated merged trace",
    )
    p_client.add_argument(
        "--trace-id", metavar="ID",
        help="propagate this exact trace id instead of minting one "
        "(implies --trace)",
    )
    p_client.add_argument(
        "--params", metavar="JSON",
        help='request params as inline JSON, e.g. \'{"tensors": ["r1"]}\'',
    )
    p_client.add_argument(
        "--timeout", type=float, default=None,
        help="socket timeout in seconds (default: block indefinitely)",
    )
    p_client.add_argument(
        "--wait", type=float, default=None, metavar="SECONDS",
        help="wait up to this long for the daemon socket to accept",
    )
    p_client.set_defaults(func=_cmd_client)

    p_health = sub.add_parser(
        "health",
        help="scrape live health telemetry from a running serve daemon: "
        "uptime, cache hit rate, pool state, request latency p50/p95/p99",
    )
    p_health.add_argument(
        "--socket", required=True, help="Unix socket of the daemon"
    )
    p_health.add_argument(
        "--timeout", type=float, default=None,
        help="socket timeout in seconds (default: block indefinitely)",
    )
    p_health.add_argument(
        "--wait", type=float, default=None, metavar="SECONDS",
        help="wait up to this long for the daemon socket to accept",
    )
    p_health.add_argument(
        "--json", action="store_true", help="print the raw payload as JSON"
    )
    p_health.set_defaults(func=_cmd_health)

    p_metrics = sub.add_parser(
        "metrics",
        help="dump the metrics registry (Prometheus text or JSON), "
        "optionally reconstructed from a run store",
    )
    p_metrics.add_argument(
        "--store",
        help="rebuild sweep counters/latency histograms from this run-store "
        "journal instead of dumping the (empty) in-process registry",
    )
    p_metrics.add_argument(
        "--format", choices=["prometheus", "json"], default="prometheus",
    )
    p_metrics.set_defaults(func=_cmd_metrics)

    p_conv = sub.add_parser("convert", help="convert/inspect a tensor file")
    p_conv.add_argument("input", help=".tns or .npz file")
    p_conv.add_argument("-o", "--output", help="output .tns or .npz path")
    p_conv.add_argument("--block-size", type=int, default=128)
    p_conv.set_defaults(func=_cmd_convert)

    p_tune = sub.add_parser(
        "tune",
        help="recommend a format and block size for a tensor file",
    )
    p_tune.add_argument("input", help=".tns or .npz file")
    p_tune.add_argument(
        "--kernels", nargs="+", default=["mttkrp"],
        choices=["tew", "ts", "ttv", "ttm", "mttkrp"],
    )
    p_tune.add_argument("--platform", default="Bluesky")
    p_tune.set_defaults(func=_cmd_tune)

    p_check = sub.add_parser(
        "selfcheck",
        help="cross-format/kernel consistency check on a tensor file or "
        "a generated tensor",
    )
    p_check.add_argument("input", nargs="?", help=".tns/.npz file (optional)")
    p_check.add_argument("--shape", type=int, nargs="+", default=[60, 50, 40])
    p_check.add_argument("--nnz", type=int, default=2000)
    p_check.add_argument("--seed", type=int, default=0)
    p_check.set_defaults(func=_cmd_selfcheck)
    return parser


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "generate" and args.kind in ("kron", "pl"):
        if not args.shape or not args.nnz:
            parser.error("--shape and --nnz are required for kron/pl generation")
    if args.command == "generate" and args.kind in ("table2", "table3") and not args.name:
        parser.error("--name is required for table2/table3 generation")
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
