"""Command-line interface: ``python -m repro`` / ``pasta-bench``.

Subcommands
-----------
``info``      — suite version, platforms, host ERT characterization.
``generate``  — synthesize a tensor (Kronecker / power-law / a Table 2
                surrogate / a Table 3 config) to ``.tns`` or ``.npz``.
``bench``     — reproduce a paper table or figure (``--exp table1 ...
                fig7 observations``), print it, optionally save CSV.
``convert``   — convert a tensor file between ``.tns`` and ``.npz`` and
                print format statistics (COO/HiCOO sizes, block stats).
"""

from __future__ import annotations

import argparse
import os
import sys


def _cmd_info(args) -> int:
    import repro
    from repro.roofline import PLATFORMS, RooflineModel, measure_host

    print(f"repro {repro.__version__} — parallel sparse tensor benchmark suite")
    print(f"kernels: tew ts ttv ttm mttkrp | formats: coo hicoo ghicoo scoo shicoo csf")
    print()
    for p in PLATFORMS:
        model = RooflineModel(p)
        print(
            f"  {p.name:8s} {p.processor:24s} peak {p.peak_sp_gflops:>8.0f} GF "
            f"ERT-DRAM {p.ert_dram_bw_gbs:>6.1f} GB/s ridge OI {p.ridge_oi:.2f}"
        )
    if args.ert:
        print("\nhost ERT characterization (NumPy micro-kernels):")
        host = measure_host()
        print(
            f"  GEMM {host.peak_sp_gflops:.1f} GFLOPS, "
            f"triad DRAM {host.ert_dram_bw_gbs:.1f} GB/s, "
            f"LLC/DRAM ratio {host.llc_bw_ratio:.2f}"
        )
    return 0


def _cmd_generate(args) -> int:
    from repro.sptensor import save_npz, write_tns

    if args.kind == "kron":
        from repro.generate import kronecker_tensor

        tensor = kronecker_tensor(args.shape, args.nnz, seed=args.seed)
    elif args.kind == "pl":
        from repro.generate import powerlaw_tensor

        tensor = powerlaw_tensor(
            args.shape, args.nnz, alpha=args.alpha,
            dense_modes=args.dense_modes or (), seed=args.seed,
        )
    elif args.kind == "table3":
        from repro.generate import get_synthetic

        tensor = get_synthetic(args.name).generate(scale=args.scale, seed=args.seed)
    elif args.kind == "table2":
        from repro.datasets import make_surrogate

        tensor = make_surrogate(args.name, scale=args.scale, seed=args.seed)
    else:  # pragma: no cover - argparse restricts choices
        raise ValueError(args.kind)
    out = args.output
    if out.endswith(".npz"):
        save_npz(tensor, out)
    else:
        write_tns(tensor, out)
    print(f"wrote {tensor!r} -> {out}")
    return 0


def _cmd_bench(args) -> int:
    from repro.bench import EXPERIMENTS

    kwargs = {"scale": args.scale}
    if args.exp in ("fig4", "fig5", "fig6", "fig7"):
        kwargs["dataset"] = args.dataset
        kwargs["seed"] = args.seed
        if args.tensors:
            kwargs["keys"] = args.tensors
    report = EXPERIMENTS[args.exp](**kwargs)
    if args.chart and report.records:
        print(report.render_chart())
    else:
        print(report.render())
    if args.csv:
        os.makedirs(os.path.dirname(args.csv) or ".", exist_ok=True)
        report.save_csv(args.csv)
        print(f"\nsaved CSV -> {args.csv}")
    return 0


def _cmd_convert(args) -> int:
    from repro.sptensor import (
        HiCOOTensor,
        block_stats,
        load_npz,
        read_tns,
        save_npz,
        summarize,
        write_tns,
    )

    tensor = load_npz(args.input) if args.input.endswith(".npz") else read_tns(args.input)
    s = summarize(tensor, os.path.basename(args.input))
    print(
        f"{s.name}: order {s.order}, shape {s.shape}, nnz {s.nnz}, "
        f"density {s.density:.3e}, fibers/mode {s.fibers_per_mode}"
    )
    h = HiCOOTensor.from_coo(tensor, args.block_size)
    bs = block_stats(h)
    print(
        f"COO {tensor.nbytes} B | HiCOO {h.nbytes} B "
        f"(ratio {h.compression_ratio():.2f}, nb {bs.nblocks}, "
        f"alpha {bs.alpha:.2f})"
    )
    if args.output:
        if args.output.endswith(".npz"):
            save_npz(tensor, args.output)
        else:
            write_tns(tensor, args.output)
        print(f"wrote -> {args.output}")
    return 0


def _cmd_tune(args) -> int:
    from repro.roofline import get_platform
    from repro.sptensor import load_npz, read_tns
    from repro.tune import recommend_format

    tensor = (
        load_npz(args.input)
        if args.input.endswith(".npz")
        else read_tns(args.input)
    )
    rec = recommend_format(
        tensor, kernels=args.kernels, platform=get_platform(args.platform)
    )
    print(rec)
    return 0


def _cmd_selfcheck(args) -> int:
    from repro.sptensor import COOTensor, load_npz, read_tns
    from repro.validate import validate_tensor

    if args.input:
        tensor = (
            load_npz(args.input)
            if args.input.endswith(".npz")
            else read_tns(args.input)
        )
        name = os.path.basename(args.input)
    else:
        tensor = COOTensor.random(args.shape, args.nnz, rng=args.seed)
        name = f"random{tuple(args.shape)}"
    report = validate_tensor(tensor, name=name, seed=args.seed)
    print(report.render())
    return 0 if report.passed else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="pasta-bench",
        description="Parallel sparse tensor benchmark suite (PPoPP'20 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_info = sub.add_parser("info", help="suite and platform information")
    p_info.add_argument("--ert", action="store_true", help="run host ERT micro-kernels")
    p_info.set_defaults(func=_cmd_info)

    p_gen = sub.add_parser("generate", help="generate a synthetic tensor")
    p_gen.add_argument("--kind", choices=["kron", "pl", "table3", "table2"], required=True)
    p_gen.add_argument("--shape", type=int, nargs="+", help="dimensions (kron/pl)")
    p_gen.add_argument("--nnz", type=int, help="non-zeros (kron/pl)")
    p_gen.add_argument("--alpha", type=float, default=2.0, help="power-law exponent")
    p_gen.add_argument("--dense-modes", type=int, nargs="*", help="uniform modes (pl)")
    p_gen.add_argument("--name", help="registry name for table2/table3 kinds")
    p_gen.add_argument("--scale", type=float, default=1000.0, help="downscale factor")
    p_gen.add_argument("--seed", type=int, default=0)
    p_gen.add_argument("-o", "--output", required=True, help=".tns or .npz path")
    p_gen.set_defaults(func=_cmd_generate)

    p_bench = sub.add_parser("bench", help="reproduce a paper table/figure")
    p_bench.add_argument(
        "--exp",
        required=True,
        choices=[
            "table1", "table2", "table3", "table4",
            "fig3", "fig4", "fig5", "fig6", "fig7", "observations",
            "sweep-nnz", "sweep-rank", "sweep-density", "sweep-blocksize",
        ],
    )
    p_bench.add_argument("--scale", type=float, default=1000.0)
    p_bench.add_argument("--dataset", choices=["real", "synthetic", "both"], default="both")
    p_bench.add_argument("--tensors", nargs="*", help="restrict to these tensors")
    p_bench.add_argument("--seed", type=int, default=0)
    p_bench.add_argument("--csv", help="also save the rows to this CSV path")
    p_bench.add_argument(
        "--chart", action="store_true",
        help="render performance figures as ASCII bar charts",
    )
    p_bench.set_defaults(func=_cmd_bench)

    p_conv = sub.add_parser("convert", help="convert/inspect a tensor file")
    p_conv.add_argument("input", help=".tns or .npz file")
    p_conv.add_argument("-o", "--output", help="output .tns or .npz path")
    p_conv.add_argument("--block-size", type=int, default=128)
    p_conv.set_defaults(func=_cmd_convert)

    p_tune = sub.add_parser(
        "tune",
        help="recommend a format and block size for a tensor file",
    )
    p_tune.add_argument("input", help=".tns or .npz file")
    p_tune.add_argument(
        "--kernels", nargs="+", default=["mttkrp"],
        choices=["tew", "ts", "ttv", "ttm", "mttkrp"],
    )
    p_tune.add_argument("--platform", default="Bluesky")
    p_tune.set_defaults(func=_cmd_tune)

    p_check = sub.add_parser(
        "selfcheck",
        help="cross-format/kernel consistency check on a tensor file or "
        "a generated tensor",
    )
    p_check.add_argument("input", nargs="?", help=".tns/.npz file (optional)")
    p_check.add_argument("--shape", type=int, nargs="+", default=[60, 50, 40])
    p_check.add_argument("--nnz", type=int, default=2000)
    p_check.add_argument("--seed", type=int, default=0)
    p_check.set_defaults(func=_cmd_selfcheck)
    return parser


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "generate" and args.kind in ("kron", "pl"):
        if not args.shape or not args.nnz:
            parser.error("--shape and --nnz are required for kron/pl generation")
    if args.command == "generate" and args.kind in ("table2", "table3") and not args.name:
        parser.error("--name is required for table2/table3 generation")
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
