"""Small bit-manipulation helpers used by HiCOO blocking and Morton codes."""

from __future__ import annotations


def is_pow2(n: int) -> bool:
    """Return True iff ``n`` is a positive power of two."""
    return n > 0 and (n & (n - 1)) == 0


def next_pow2(n: int) -> int:
    """Smallest power of two >= ``n`` (with ``next_pow2(0) == 1``)."""
    if n <= 1:
        return 1
    return 1 << (int(n - 1).bit_length())


def ilog2(n: int) -> int:
    """Integer log2 of a power of two; raises for non-powers."""
    if not is_pow2(n):
        raise ValueError(f"ilog2 requires a power of two, got {n}")
    return n.bit_length() - 1
