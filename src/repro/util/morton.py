"""Vectorized Morton (Z-order) codes for N-dimensional block coordinates.

HiCOO sorts tensor blocks in Morton order to increase data locality when a
block is revisited along different modes (Li et al., SC'18).  We implement a
vectorized bit-interleaving encoder for arbitrary mode counts.  When the
coordinates are too wide to interleave into a single 64-bit word, callers
fall back to lexicographic ordering via :func:`morton_order`, which handles
both regimes transparently.
"""

from __future__ import annotations

import numpy as np


def _required_bits(coords: np.ndarray) -> int:
    """Number of bits needed per coordinate column."""
    if coords.size == 0:
        return 1
    max_coord = int(coords.max())
    return max(1, int(max_coord).bit_length())


def morton_encode(coords: np.ndarray, nbits: int | None = None) -> np.ndarray:
    """Interleave the bits of each row of ``coords`` into a Morton code.

    Parameters
    ----------
    coords:
        ``(M, N)`` array of non-negative integers; row ``m`` holds the
        N-dimensional coordinate of item ``m``.
    nbits:
        Bits per coordinate to interleave.  Defaults to the minimum needed
        for the largest coordinate present.

    Returns
    -------
    ``(M,)`` uint64 array of Z-order codes.  Bit ``k`` of coordinate ``d``
    lands at output bit ``k * N + (N - 1 - d)`` so that mode 0 is the most
    significant within each bit-plane (matching row-major tie-breaking).

    Raises
    ------
    ValueError
        If ``nbits * N > 64`` (codes would overflow a single word).
    """
    coords = np.ascontiguousarray(coords)
    if coords.ndim != 2:
        raise ValueError(f"coords must be 2-D (M, N), got shape {coords.shape}")
    m, n = coords.shape
    if nbits is None:
        nbits = _required_bits(coords)
    if nbits * n > 64:
        raise ValueError(
            f"cannot interleave {n} coordinates of {nbits} bits into 64-bit "
            f"Morton codes (needs {nbits * n} bits)"
        )
    codes = np.zeros(m, dtype=np.uint64)
    cols = coords.astype(np.uint64, copy=False)
    for bit in range(nbits):
        for d in range(n):
            src = (cols[:, d] >> np.uint64(bit)) & np.uint64(1)
            dst_bit = np.uint64(bit * n + (n - 1 - d))
            codes |= src << dst_bit
    return codes


def morton_decode(codes: np.ndarray, nmodes: int, nbits: int) -> np.ndarray:
    """Invert :func:`morton_encode` for ``(M,)`` codes into ``(M, nmodes)``."""
    codes = np.asarray(codes, dtype=np.uint64)
    if nbits * nmodes > 64:
        raise ValueError("decode width exceeds 64 bits")
    out = np.zeros((codes.shape[0], nmodes), dtype=np.uint64)
    for bit in range(nbits):
        for d in range(nmodes):
            src_bit = np.uint64(bit * nmodes + (nmodes - 1 - d))
            out[:, d] |= ((codes >> src_bit) & np.uint64(1)) << np.uint64(bit)
    return out


def morton_order(coords: np.ndarray) -> np.ndarray:
    """Return the permutation sorting rows of ``coords`` in Z-order.

    Falls back to lexicographic (row-major) ordering when the coordinates
    are too wide for a 64-bit Morton code.  Lexicographic ordering preserves
    the key HiCOO property (entries of the same block are contiguous) at the
    cost of weaker inter-block locality, which only matters for performance,
    not correctness.
    """
    coords = np.ascontiguousarray(coords)
    if coords.shape[0] == 0:
        return np.empty(0, dtype=np.intp)
    nbits = _required_bits(coords)
    if nbits * coords.shape[1] <= 64:
        codes = morton_encode(coords, nbits)
        return np.argsort(codes, kind="stable")
    # np.lexsort sorts by the *last* key first, so feed columns reversed to
    # obtain row-major (mode-0 major) ordering.
    return np.lexsort(tuple(coords[:, d] for d in range(coords.shape[1] - 1, -1, -1)))
