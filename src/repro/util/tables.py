"""Plain-text table rendering for benchmark reports.

The harness reproduces the paper's tables and figures as aligned text
tables (figures become per-tensor data series), so the rendering helpers
live in one place and every experiment shares the same look.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence


def _fmt_cell(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        a = abs(value)
        if a >= 1e5 or a < 1e-3:
            return f"{value:.3g}"
        return f"{value:.4g}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Any]],
    title: str | None = None,
) -> str:
    """Render an aligned monospace table with optional title."""
    srows = [[_fmt_cell(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in srows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * max(len(title), len(sep)))
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in srows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def write_csv(path, headers: Sequence[str], rows: Iterable[Sequence[Any]]) -> None:
    """Write rows to ``path`` as CSV (no external deps, RFC-4180 quoting)."""
    import csv

    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(list(headers))
        for row in rows:
            writer.writerow(list(row))
