"""Argument validation helpers shared by formats and kernels."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ModeError, ShapeError


def check_mode(mode: int, nmodes: int) -> int:
    """Validate and normalize a mode index (negative modes count from end)."""
    if not isinstance(mode, (int, np.integer)):
        raise ModeError(f"mode must be an integer, got {type(mode).__name__}")
    m = int(mode)
    if m < 0:
        m += nmodes
    if not 0 <= m < nmodes:
        raise ModeError(f"mode {mode} out of range for order-{nmodes} tensor")
    return m


def check_shape(shape: Sequence[int]) -> tuple[int, ...]:
    """Validate a tensor shape: non-empty with positive integer dims."""
    shp = tuple(int(s) for s in shape)
    if len(shp) == 0:
        raise ShapeError("tensor shape must have at least one mode")
    if any(s <= 0 for s in shp):
        raise ShapeError(f"all dimensions must be positive, got {shp}")
    return shp


def check_same_shape(a, b, what: str = "tensors") -> None:
    """Require two tensor-like objects to have identical shapes."""
    if tuple(a.shape) != tuple(b.shape):
        raise ShapeError(f"{what} must have the same shape: {a.shape} vs {b.shape}")


def check_indices_in_bounds(indices: np.ndarray, shape: Sequence[int]) -> None:
    """Require every coordinate column to lie inside the tensor shape."""
    if indices.ndim != 2 or indices.shape[1] != len(shape):
        raise ShapeError(
            f"indices must be (M, {len(shape)}), got shape {indices.shape}"
        )
    if indices.shape[0] == 0:
        return
    mins = indices.min(axis=0)
    maxs = indices.max(axis=0)
    if (mins.astype(np.int64) < 0).any():
        raise ShapeError("negative tensor indices are invalid")
    shape_arr = np.asarray(shape, dtype=np.int64)
    if (maxs.astype(np.int64) >= shape_arr).any():
        bad = int(np.flatnonzero(maxs.astype(np.int64) >= shape_arr)[0])
        raise ShapeError(
            f"index out of bounds on mode {bad}: max index {int(maxs[bad])} "
            f">= dimension {int(shape_arr[bad])}"
        )
