"""Wall-clock timing helpers for the benchmark harness.

The paper runs each kernel five times and reports the average; mode-oriented
kernels (Ttv, Ttm, Mttkrp) are further averaged across modes.  These helpers
implement that measurement protocol.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable


@dataclass
class Timer:
    """Context-manager stopwatch accumulating elapsed seconds.

    The timer is not re-entrant: entering an already-running timer would
    silently overwrite its start mark and drop the first interval, so it
    raises ``RuntimeError`` instead.  :meth:`split` reads the running
    total without stopping the clock.

    >>> t = Timer()
    >>> with t:
    ...     _ = sum(range(100))
    >>> t.elapsed >= 0.0
    True
    """

    elapsed: float = 0.0
    _t0: float = field(default=0.0, repr=False)
    _running: bool = field(default=False, repr=False)

    def __enter__(self) -> "Timer":
        if self._running:
            raise RuntimeError("Timer is not re-entrant: already running")
        self._running = True
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc: Any) -> None:
        self.elapsed += time.perf_counter() - self._t0
        self._running = False

    def split(self) -> float:
        """Elapsed seconds so far, including the in-flight interval."""
        if self._running:
            return self.elapsed + (time.perf_counter() - self._t0)
        return self.elapsed

    def reset(self) -> None:
        """Zero the accumulated total (only while stopped)."""
        if self._running:
            raise RuntimeError("cannot reset a running Timer")
        self.elapsed = 0.0


@dataclass(frozen=True)
class TimingResult:
    """Statistics from repeated timing of a callable."""

    mean: float
    best: float
    worst: float
    repeats: int
    result: Any

    @property
    def seconds(self) -> float:
        """The paper reports the average of five runs."""
        return self.mean


def time_call(
    fn: Callable[[], Any],
    repeats: int = 5,
    warmup: int = 1,
) -> TimingResult:
    """Time ``fn`` with the paper's protocol: warm-up runs then an average.

    Returns the last call's result alongside the statistics so that
    benchmark drivers can validate outputs without re-running.
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    result = None
    for _ in range(warmup):
        result = fn()
    times = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        times.append(time.perf_counter() - t0)
    return TimingResult(
        mean=sum(times) / len(times),
        best=min(times),
        worst=max(times),
        repeats=repeats,
        result=result,
    )
