"""Seeded random number generation for reproducible tensor synthesis.

The paper emphasizes that its synthetic generators produce tensors "in a
reproducible manner"; all randomness in this suite flows through
:func:`rng_from_seed` so that a (seed, parameters) pair fully determines a
generated tensor.
"""

from __future__ import annotations

import numpy as np


def rng_from_seed(seed: "int | np.random.Generator | None") -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Accepts an existing generator (returned unchanged, enabling streams to
    be threaded through composite generators), an integer seed, or ``None``
    for OS entropy.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn(rng: np.random.Generator, n: int) -> list[np.random.Generator]:
    """Derive ``n`` independent child generators from ``rng``."""
    return [np.random.default_rng(s) for s in rng.integers(0, 2**63 - 1, size=n)]
