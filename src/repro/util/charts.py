"""ASCII bar charts for rendering the paper's figures in a terminal.

Figures 4-7 are grouped bar charts (GFLOPS per tensor, one bar per
kernel/format, with a roofline marker).  ``grouped_bars`` renders that
shape with unicode block glyphs; values can span decades, so an optional
log scale keeps Mttkrp visible next to Ts.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

BAR_CHARS = "▏▎▍▌▋▊▉█"


def _bar(value: float, vmax: float, width: int, log: bool) -> str:
    if value <= 0 or vmax <= 0:
        return ""
    if log:
        # map [1, vmax] logarithmically; clamp below 1 to a sliver
        frac = max(0.0, math.log10(max(value, 1.0))) / max(
            math.log10(max(vmax, 10.0)), 1e-9
        )
    else:
        frac = value / vmax
    frac = min(max(frac, 0.0), 1.0)
    cells = frac * width
    full = int(cells)
    rem = cells - full
    out = "█" * full
    if rem > 1 / 8 and full < width:
        out += BAR_CHARS[int(rem * 8) - 1]
    return out


def grouped_bars(
    groups: Mapping[str, Mapping[str, float]],
    width: int = 40,
    log: bool = False,
    marker: Mapping[tuple[str, str], float] | None = None,
    unit: str = "",
) -> str:
    """Render ``{group: {series: value}}`` as grouped horizontal bars.

    ``marker`` optionally draws a per-row reference value — keyed
    ``(group, series)``, e.g. that kernel's roofline bound — as a ``|``
    tick on the bar line.
    """
    if not groups:
        return "(no data)"
    vmax = max(
        (v for series in groups.values() for v in series.values()),
        default=1.0,
    )
    if marker:
        vmax = max(vmax, max(marker.values(), default=0.0))
    label_w = max(
        (len(s) for series in groups.values() for s in series), default=4
    )
    lines = []
    for gname, series in groups.items():
        lines.append(f"{gname}")
        for sname, value in series.items():
            bar = _bar(value, vmax, width, log)
            line = f"  {sname:<{label_w}} {bar:<{width}} {value:.2f}{unit}"
            if marker and (gname, sname) in marker:
                mpos = _bar(marker[(gname, sname)], vmax, width, log)
                tick = min(len(mpos), width - 1)
                line = (
                    f"  {sname:<{label_w}} "
                    + (bar + " " * width)[:tick]
                    + "|"
                    + (bar + " " * width)[tick + 1:width]
                    + f" {value:.2f}{unit}"
                )
            lines.append(line)
    if marker:
        lines.append("  ('|' marks each kernel's roofline bound)")
    return "\n".join(lines)


def perf_records_chart(
    records: Sequence,
    value: str = "gflops",
    width: int = 36,
    log: bool = True,
) -> str:
    """Chart a list of PerfRecords grouped by tensor, one bar per
    kernel/format, each with its own roofline marker."""
    groups: dict[str, dict[str, float]] = {}
    marker: dict[tuple[str, str], float] = {}
    for rec in records:
        series = groups.setdefault(rec.tensor, {})
        key = f"{rec.kernel}/{rec.fmt}"
        series[key] = getattr(rec, value)
        marker[(rec.tensor, key)] = rec.bound_gflops
    return grouped_bars(
        groups, width=width, log=log,
        marker=marker if value == "gflops" else None,
        unit="",
    )
