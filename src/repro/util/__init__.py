"""Utility helpers shared across the suite (bit tricks, timing, tables)."""

from repro.util.bits import is_pow2, next_pow2, ilog2
from repro.util.morton import morton_encode, morton_order, morton_decode
from repro.util.timing import Timer, time_call
from repro.util.prng import rng_from_seed

__all__ = [
    "is_pow2",
    "next_pow2",
    "ilog2",
    "morton_encode",
    "morton_decode",
    "morton_order",
    "Timer",
    "time_call",
    "rng_from_seed",
]
