"""Statistical perf-regression sentinel over run stores and bench files.

``BENCH_*.json`` files and run-store journals record what the suite *did*
measure; nothing so far said whether a new measurement is *worse*.  This
module is that gate: it pairs two measurement sources case-for-case,
summarizes each (kernel, fmt, method) group by the **geometric mean of
the per-case time ratios** (B over A, >1 means B is slower), brackets
that geomean with a seeded **bootstrap confidence interval**
(:func:`repro.metrics.stats.geomean_ratio_ci`), and classifies:

* ``regressed``  — the whole CI sits above the threshold (confidently
  slower; the CLI exits nonzero);
* ``improved``   — the whole CI sits below 1/threshold;
* ``neutral``    — the CI straddles the no-change band;
* ``insufficient-data`` — fewer matched pairs than ``min_pairs``, or no
  usable ratios; never gates.

Sources may be run-store JSONL journals (:mod:`repro.bench.runstore`) or
bench-harness JSON files (``benchmarks/bench_hotpaths.py`` output, e.g.
the committed ``BENCH_kernels.json``); the two kinds are sniffed, so
``repro regress store.jsonl BENCH_kernels.json`` compares a sweep
against the committed baseline.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Optional

from repro.bench.runstore import RunStore
from repro.metrics.perf import PerfRecord
from repro.metrics.stats import BootstrapCI, geomean_ratio_ci

REGRESSED = "regressed"
IMPROVED = "improved"
NEUTRAL = "neutral"
INSUFFICIENT = "insufficient-data"

#: Bench-harness entry keys that are measurements, not identity tags.
_BENCH_VALUE_KEYS = {
    "median_s", "min_s", "reps", "compile_s",
    "imbalance", "busy_frac", "eff_bw_gbs", "bound_fraction",
}


class RegressError(ValueError):
    """The two sources cannot be compared (no overlap, unreadable file)."""


@dataclass(frozen=True)
class Measurement:
    """One comparable timing: who it is, which group it gates, seconds."""

    identity: tuple
    group: tuple
    value: float


def _store_measurements(path: str) -> list:
    """Measurements out of a run-store journal.

    Identity is the sweep cell (tensor, kernel, fmt, platform); the time
    is the measured host wall-clock when the case recorded one, else the
    modeled platform time (deterministic, so self-comparison is exact).
    """
    state = RunStore(path).load()
    out = []
    for line in state.records.values():
        rec = PerfRecord.from_dict(line["record"])
        value = rec.host_seconds if rec.host_seconds > 0 else rec.seconds
        method = rec.extra.get("method", "")
        out.append(
            Measurement(
                identity=(rec.tensor, rec.kernel, rec.fmt, rec.platform),
                group=(rec.kernel, rec.fmt, str(method)),
                value=float(value),
            )
        )
    return out


def _bench_measurements(path: str, data: dict) -> list:
    """Measurements out of a bench-harness JSON (``BENCH_*.json``)."""
    out = []
    for entry in data.get("results", []):
        tags = {
            str(k): entry[k] for k in entry if k not in _BENCH_VALUE_KEYS
        }
        value = entry.get("median_s")
        if value is None:
            continue
        out.append(
            Measurement(
                identity=tuple(sorted((k, str(v)) for k, v in tags.items())),
                group=(
                    str(entry.get("kernel", "")),
                    str(entry.get("format", entry.get("fmt", ""))),
                    str(entry.get("method", "")),
                ),
                value=float(value),
            )
        )
    return out


def load_measurements(path: str) -> list:
    """Load a measurement source, sniffing run-store vs bench JSON.

    A file that parses as one JSON object with a ``results`` list is a
    bench-harness file; anything else (JSONL, or a single journal line)
    is read as a run store.
    """
    if not os.path.exists(path):
        raise RegressError(f"no such measurement source: {path}")
    with open(path) as f:
        text = f.read()
    try:
        data = json.loads(text)
    except json.JSONDecodeError:
        data = None
    if isinstance(data, dict) and "results" in data:
        return _bench_measurements(path, data)
    measurements = _store_measurements(path)
    if not measurements:
        raise RegressError(f"{path}: no measurements (empty or wrong format)")
    return measurements


@dataclass(frozen=True)
class GroupComparison:
    """One (kernel, fmt, method) group's verdict."""

    group: tuple
    n_pairs: int
    n_dropped: int
    ci: Optional[BootstrapCI]
    classification: str

    @property
    def label(self) -> str:
        kernel, fmt, method = self.group
        return "/".join(p for p in (kernel, fmt, method) if p)

    def as_dict(self) -> dict:
        return {
            "group": list(self.group),
            "n_pairs": self.n_pairs,
            "n_dropped": self.n_dropped,
            "ci": self.ci.as_dict() if self.ci is not None else None,
            "classification": self.classification,
        }


@dataclass(frozen=True)
class RegressionReport:
    """All group verdicts of one A-vs-B comparison."""

    a_label: str
    b_label: str
    threshold: float
    confidence: float
    groups: tuple
    #: Identities present in only one source (not compared).
    unmatched_a: int = 0
    unmatched_b: int = 0
    meta: dict = field(default_factory=dict)

    @property
    def regressions(self) -> list:
        return [g for g in self.groups if g.classification == REGRESSED]

    @property
    def exit_code(self) -> int:
        """Nonzero iff at least one group confidently regressed."""
        return 1 if self.regressions else 0

    def counts(self) -> dict:
        out = {REGRESSED: 0, IMPROVED: 0, NEUTRAL: 0, INSUFFICIENT: 0}
        for g in self.groups:
            out[g.classification] += 1
        return out

    def as_dict(self) -> dict:
        return {
            "a": self.a_label,
            "b": self.b_label,
            "threshold": self.threshold,
            "confidence": self.confidence,
            "groups": [g.as_dict() for g in self.groups],
            "counts": self.counts(),
            "unmatched_a": self.unmatched_a,
            "unmatched_b": self.unmatched_b,
            "exit_code": self.exit_code,
        }

    def render(self) -> str:
        lines = [
            f"perf regression check: {self.a_label} -> {self.b_label}",
            f"  ratio = B/A time per matched case, geomean per group; "
            f"threshold {self.threshold:g}, {self.confidence:.0%} bootstrap CI",
            "",
            f"  {'group':<28} {'pairs':>5} {'ratio':>8} "
            f"{'ci_lo':>8} {'ci_hi':>8}  verdict",
        ]
        for g in self.groups:
            if g.ci is None:
                lines.append(
                    f"  {g.label:<28} {g.n_pairs:>5d} {'-':>8} "
                    f"{'-':>8} {'-':>8}  {g.classification}"
                )
            else:
                lines.append(
                    f"  {g.label:<28} {g.n_pairs:>5d} {g.ci.estimate:>8.3f} "
                    f"{g.ci.lo:>8.3f} {g.ci.hi:>8.3f}  {g.classification}"
                )
        c = self.counts()
        lines.append("")
        lines.append(
            f"  {c[REGRESSED]} regressed, {c[IMPROVED]} improved, "
            f"{c[NEUTRAL]} neutral, {c[INSUFFICIENT]} insufficient-data"
        )
        if self.unmatched_a or self.unmatched_b:
            lines.append(
                f"  unmatched cases: {self.unmatched_a} only in A, "
                f"{self.unmatched_b} only in B"
            )
        return "\n".join(lines)


def classify(
    ci: Optional[BootstrapCI],
    n_pairs: int,
    threshold: float,
    min_pairs: int,
) -> str:
    """Verdict of one group from its ratio CI and pair count."""
    if ci is None or n_pairs < min_pairs:
        return INSUFFICIENT
    if ci.lo > threshold:
        return REGRESSED
    if ci.hi < 1.0 / threshold:
        return IMPROVED
    return NEUTRAL


def compare_measurements(
    a: list,
    b: list,
    *,
    a_label: str = "A",
    b_label: str = "B",
    threshold: float = 1.05,
    confidence: float = 0.95,
    resamples: int = 1000,
    min_pairs: int = 2,
    seed: int = 0,
) -> RegressionReport:
    """Pair two measurement lists by identity and judge each group.

    Within each source, duplicate identities keep the last measurement
    (matching run-store later-line-wins semantics).
    """
    index_a = {m.identity: m for m in a}
    index_b = {m.identity: m for m in b}
    shared = sorted(set(index_a) & set(index_b))
    if not shared:
        raise RegressError(
            f"no common cases between {a_label} ({len(index_a)} cases) "
            f"and {b_label} ({len(index_b)} cases)"
        )
    ratios: dict[tuple, list] = {}
    dropped: dict[tuple, int] = {}
    for identity in shared:
        ma, mb = index_a[identity], index_b[identity]
        group = mb.group
        if ma.value > 0 and mb.value > 0:
            ratios.setdefault(group, []).append(mb.value / ma.value)
        else:
            dropped[group] = dropped.get(group, 0) + 1
            ratios.setdefault(group, [])
    groups = []
    for group in sorted(ratios):
        vals = ratios[group]
        ci = geomean_ratio_ci(
            vals, resamples=resamples, confidence=confidence, seed=seed
        )
        groups.append(
            GroupComparison(
                group=group,
                n_pairs=len(vals),
                n_dropped=dropped.get(group, 0),
                ci=ci,
                classification=classify(ci, len(vals), threshold, min_pairs),
            )
        )
    return RegressionReport(
        a_label=a_label,
        b_label=b_label,
        threshold=float(threshold),
        confidence=float(confidence),
        groups=tuple(groups),
        unmatched_a=len(index_a) - len(shared),
        unmatched_b=len(index_b) - len(shared),
    )


def compare_paths(
    a_path: str,
    b_path: str,
    **kwargs,
) -> RegressionReport:
    """Load and compare two measurement sources (stores or bench JSON)."""
    kwargs.setdefault("a_label", a_path)
    kwargs.setdefault("b_label", b_path)
    return compare_measurements(
        load_measurements(a_path), load_measurements(b_path), **kwargs
    )
