"""Append-only JSONL run store for resumable, shardable sweeps.

A *run store* is the durable journal of a sweep execution: every
completed case appends one ``record`` line, every case that exhausted
its retries appends one ``quarantine`` line.  Lines are self-contained
JSON objects, flushed as they are written, so

* an interrupted run loses at most the line being written — a truncated
  final line is tolerated on load and simply re-run on resume;
* ``N`` shards journal to ``N`` independent stores that merge into one
  (:func:`merge_stores`), with fingerprints deduplicating overlap;
* resuming is "load the store, skip every fingerprint that already has a
  record" (:meth:`RunState.completed`).

The line schema (``STORE_VERSION``) is pinned by the golden-schema
tests; consumers parse stores from disk, so drift must fail CI.  Every
fresh journal opens with a ``header`` line carrying the
fingerprint-schema version (a hash of the :class:`SweepCase` field set):
fingerprints are only comparable across runs when they were computed
under the same field set, so loading a journal written under a different
one raises instead of silently missing every cache lookup.  Legacy
header-less journals still load.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field

from repro.metrics.perf import PerfRecord

#: Bumped on any backwards-incompatible line-schema change.
STORE_VERSION = 1

RECORD_KIND = "record"
QUARANTINE_KIND = "quarantine"
#: First line of every journal written since the serving layer: carries
#: the fingerprint-schema version the store's case fingerprints were
#: computed under, so cache lookups against a stale store fail loudly.
HEADER_KIND = "header"


def _current_fingerprint_schema() -> str:
    # Lazy: repro.bench.runner pulls in the kernel stack, which a
    # journal reader does not need until it actually validates.
    from repro.bench.runner import fingerprint_schema_version

    return fingerprint_schema_version()


class StoreError(ValueError):
    """A run store line that cannot be interpreted (not mere truncation)."""


@dataclass
class RunState:
    """The resolved contents of one (or several merged) run stores.

    ``records`` maps fingerprint -> the latest *record* line payload;
    ``quarantined`` maps fingerprint -> the latest quarantine payload for
    cases that have **no** successful record (a later success supersedes
    an earlier quarantine, which is how a resumed run clears the
    quarantine of a previously failing case).
    """

    records: dict = field(default_factory=dict)
    quarantined: dict = field(default_factory=dict)
    truncated_lines: int = 0
    #: The journal's header line, when present (legacy stores have none).
    header: "dict | None" = None

    def completed(self) -> set:
        """Fingerprints that need no re-run."""
        return set(self.records)

    def perf_records(self, case_order=None) -> "list[PerfRecord]":
        """The stored measurements as :class:`PerfRecord` objects.

        ``case_order`` (an iterable of fingerprints, e.g. from
        :func:`repro.bench.runner.enumerate_cases`) fixes the output
        order; unknown fingerprints are skipped and leftovers appended in
        journal order, so a merged sharded store renders case-for-case
        like the un-sharded run.
        """
        lines = dict(self.records)
        out = []
        for fp in case_order or ():
            line = lines.pop(fp, None)
            if line is not None:
                out.append(PerfRecord.from_dict(line["record"]))
        out.extend(PerfRecord.from_dict(line["record"]) for line in lines.values())
        return out

    def absorb(self, payload: dict) -> None:
        """Fold one journal line into the state (later lines win)."""
        if not isinstance(payload, dict):
            raise StoreError(
                f"run-store line must be a JSON object, got "
                f"{type(payload).__name__}"
            )
        try:
            fp = payload["fingerprint"]
            kind = payload["kind"]
        except KeyError as exc:
            raise StoreError(
                f"run-store line missing required key {exc.args[0]!r}"
            ) from None
        if kind == RECORD_KIND:
            self.records[fp] = payload
            self.quarantined.pop(fp, None)
        elif kind == QUARANTINE_KIND:
            if fp not in self.records:
                self.quarantined[fp] = payload
        else:
            raise StoreError(f"unknown run-store line kind {kind!r}")


class RunStore:
    """One append-only JSONL journal file."""

    def __init__(self, path):
        self.path = os.fspath(path)

    def exists(self) -> bool:
        return os.path.exists(self.path)

    # -- writing ------------------------------------------------------- #
    def _repair_tail(self) -> None:
        """Drop a torn final line left by an interrupted writer.

        Appending after a torn line would weld the new line onto it and
        turn tolerable truncation into mid-file corruption, so the tail
        is cut back to the last complete line before any append.
        """
        if not os.path.exists(self.path):
            return
        with open(self.path, "rb+") as f:
            data = f.read()
            if not data or data.endswith(b"\n"):
                return
            f.truncate(data.rfind(b"\n") + 1)

    def header_line(self) -> dict:
        """The header stamped onto every fresh journal."""
        return {
            "v": STORE_VERSION,
            "kind": HEADER_KIND,
            "fingerprint_schema": _current_fingerprint_schema(),
        }

    def _append(self, payload: dict) -> None:
        line = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        os.makedirs(os.path.dirname(self.path) or ".", exist_ok=True)
        self._repair_tail()
        fresh = not os.path.exists(self.path) or os.path.getsize(self.path) == 0
        with open(self.path, "a") as f:
            if fresh and payload.get("kind") != HEADER_KIND:
                f.write(
                    json.dumps(
                        self.header_line(), sort_keys=True, separators=(",", ":")
                    )
                    + "\n"
                )
            f.write(line + "\n")
            f.flush()
            os.fsync(f.fileno())

    def append_record(
        self, case, record: PerfRecord, attempt: int, elapsed_s: float
    ) -> dict:
        """Journal one completed case; returns the written line payload."""
        payload = {
            "v": STORE_VERSION,
            "kind": RECORD_KIND,
            "fingerprint": case.fingerprint,
            "seed": case.case_seed,
            "case": case.to_dict(),
            "attempt": int(attempt),
            "elapsed_s": float(elapsed_s),
            "record": record.to_dict(),
        }
        self._append(payload)
        return payload

    def append_quarantine(self, case, failures) -> dict:
        """Journal a case that exhausted its retries, with its failure log."""
        payload = {
            "v": STORE_VERSION,
            "kind": QUARANTINE_KIND,
            "fingerprint": case.fingerprint,
            "seed": case.case_seed,
            "case": case.to_dict(),
            "failures": [dict(f) for f in failures],
        }
        self._append(payload)
        return payload

    # -- reading ------------------------------------------------------- #
    def load(self) -> RunState:
        """Fold the journal into a :class:`RunState`.

        A truncated (interrupted-write) *final* line is tolerated and
        counted; a malformed line anywhere else is corruption and raises
        :class:`StoreError`.
        """
        state = RunState()
        if not self.exists():
            return state
        with open(self.path) as f:
            lines = f.read().split("\n")
        if lines and lines[-1] == "":
            lines.pop()
        for i, line in enumerate(lines):
            if not line.strip():
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError:
                if i == len(lines) - 1:
                    state.truncated_lines += 1
                    continue
                raise StoreError(
                    f"{self.path}:{i + 1}: corrupt run-store line"
                ) from None
            if not isinstance(payload, dict):
                raise StoreError(
                    f"{self.path}:{i + 1}: run-store line is not a JSON "
                    f"object (got {type(payload).__name__})"
                )
            if payload.get("v") != STORE_VERSION:
                raise StoreError(
                    f"{self.path}:{i + 1}: store version "
                    f"{payload.get('v')!r} != {STORE_VERSION}"
                )
            if payload.get("kind") == HEADER_KIND:
                schema = payload.get("fingerprint_schema")
                current = _current_fingerprint_schema()
                if schema != current:
                    # Fingerprints in this journal were computed under a
                    # different SweepCase field set: every cache lookup
                    # against it would silently miss (or falsely hit), so
                    # reading it is an error, not a degraded mode.
                    raise StoreError(
                        f"{self.path}:{i + 1}: store fingerprint schema "
                        f"{schema!r} != current {current!r} — the SweepCase "
                        f"field set changed since this journal was written; "
                        f"re-run the sweep into a fresh store"
                    )
                state.header = payload
                continue
            try:
                state.absorb(payload)
            except StoreError as exc:
                # Structural corruption (a line that *parses* but lacks the
                # schema) is not truncation, so it raises even on the final
                # line — with file:line context pointing at the bad line.
                raise StoreError(f"{self.path}:{i + 1}: {exc}") from None
        return state


def merge_stores(paths, out_path=None) -> RunState:
    """Merge shard stores into one state (optionally journaled to disk).

    Precedence matches the single-store resume semantics exactly: record
    lines win over quarantine lines for the same fingerprint, and among
    lines of the same kind the **later store listed wins** — just as
    later lines win within one journal (:meth:`RunState.absorb`).
    Shards are disjoint, so same-kind duplicates only arise from
    overlapping resumed runs, where the later store is the fresher one.
    """
    merged = RunState()
    for path in paths:
        state = RunStore(path).load()
        for line in state.records.values():
            merged.absorb(line)
        for line in state.quarantined.values():
            merged.absorb(line)
        merged.truncated_lines += state.truncated_lines
    if out_path is not None:
        out = RunStore(out_path)
        if os.path.exists(out.path):
            os.remove(out.path)
        os.makedirs(os.path.dirname(out.path) or ".", exist_ok=True)
        with open(out.path, "w") as f:
            for line in [out.header_line()] + list(merged.records.values()) + list(
                merged.quarantined.values()
            ):
                f.write(json.dumps(line, sort_keys=True, separators=(",", ":")) + "\n")
    return merged
