"""Isolated worker subprocess: run one sweep case, write a JSON verdict.

Invoked by the sweep executor as

    python -m repro.bench.worker CASE_JSON VERDICT_JSON

where ``CASE_JSON`` holds ``{"case": <SweepCase.to_dict()>, "attempt":
n, "faults": {...}}`` plus an optional ``"trace"`` trace-context dict.
The worker writes a verdict — ``{"ok": true, "record": ...}`` or
``{"ok": false, "error": ...}`` — atomically (temp file + rename) and
exits 0 in both cases: a *handled* kernel failure is data, not a crash.
Only a hard death (injected ``kill_attempts`` fault, OOM, segfault)
leaves no verdict, which the parent classifies as a crash; an injected
hang simply never finishes and is killed by the parent's per-case
timeout.

When a trace context rides in (payload ``trace`` key, or the
``REPRO_TRACE_CONTEXT`` environment variable), the case runs under an
installed :class:`~repro.obs.tracer.Tracer` carrying the request's
trace_id, and the verdict additionally ships ``"trace"`` (the frozen
span buffer, :meth:`Trace.to_dict`) and ``"metrics"`` (this process's
registry dump) home for the parent to fold in — without a context the
verdict is byte-identical to an untraced worker's.
"""

from __future__ import annotations

import json
import os
import sys
import time


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if len(argv) != 2:
        from repro.obs.log import get_logger

        get_logger("repro.bench.worker").error(
            "usage", expected="python -m repro.bench.worker CASE_JSON VERDICT_JSON"
        )
        return 2
    case_path, verdict_path = argv
    with open(case_path) as f:
        payload = json.load(f)

    from repro.bench.executor import execute_case, match_fault
    from repro.bench.runner import SweepCase
    from repro.obs.context import TraceContext, install_context

    case = SweepCase.from_dict(payload["case"])
    attempt = int(payload.get("attempt", 0))
    faults = payload.get("faults") or {}
    fault = match_fault(case, faults)
    if attempt < int(fault.get("kill_attempts", 0)):
        # Simulated hard worker death: no verdict, nonzero exit, no
        # cleanup — exactly what the parent's crash path must absorb.
        os._exit(13)
    if attempt < int(fault.get("hang_attempts", 0)):
        # Simulated hang; the parent kills us at its per-case timeout.
        time.sleep(float(fault.get("hang_s", 3600.0)))

    raw_context = payload.get("trace")
    context = (
        TraceContext.from_dict(raw_context)
        if raw_context
        else TraceContext.from_env(os.environ)
    )
    tracer = None
    if context is not None:
        from repro.obs.tracer import Tracer

        tracer = Tracer(
            trace_id=context.trace_id,
            meta={
                "process": f"worker {case.fingerprint}",
                "parent_span": context.parent_span,
                "fingerprint": case.fingerprint,
            },
        ).install()
        install_context(context)

    t0 = time.perf_counter()
    try:
        record = execute_case(case, attempt=attempt, faults=faults)
    except Exception as exc:  # noqa: BLE001 - the verdict carries it
        verdict = {
            "ok": False,
            "fingerprint": case.fingerprint,
            "error": f"{type(exc).__name__}: {exc}",
            "elapsed_s": time.perf_counter() - t0,
        }
    else:
        verdict = {
            "ok": True,
            "fingerprint": case.fingerprint,
            "seed": case.case_seed,
            "record": record.to_dict(),
            "elapsed_s": time.perf_counter() - t0,
        }
    if tracer is not None:
        # Telemetry rides home in the verdict on both the success and
        # the handled-failure path — a failing case's spans are exactly
        # the ones worth seeing in the merged trace.
        from repro.obs.registry import get_metrics

        tracer.uninstall()
        verdict["trace"] = tracer.freeze().to_dict()
        verdict["metrics"] = get_metrics().as_dict()
    tmp = verdict_path + ".tmp"
    with open(tmp, "w") as f:
        json.dump(verdict, f)
    os.replace(tmp, verdict_path)
    return 0


if __name__ == "__main__":  # pragma: no cover - subprocess entry
    sys.exit(main())
