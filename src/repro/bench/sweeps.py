"""Parameter sweeps: performance as a function of one tensor knob.

The paper's figures hold parameters fixed (R=16, B=128) and vary the
tensor; these sweeps do the converse — vary one knob over a controlled
tensor family and report the modeled platform performance — which is how
the crossovers behind the observations (cache capacity, block occupancy,
rank amortization) are located precisely.
"""

from __future__ import annotations

from typing import Sequence

from repro.types import Format, Kernel
from repro.bench.experiments import Report
from repro.bench.runner import RunnerConfig, SuiteRunner, TensorBundle
from repro.generate.powerlaw import powerlaw_tensor
from repro.roofline.platform import BLUESKY, PlatformSpec, get_platform
from repro.sptensor.coo import COOTensor


def _runner(platform, cache_scale: float) -> SuiteRunner:
    cfg = RunnerConfig(measure_host=False, cache_scale=cache_scale)
    return SuiteRunner(platform, cfg)


def nnz_sweep(
    nnz_values: Sequence[int] = (1_000, 4_000, 16_000, 64_000, 256_000),
    shape: tuple[int, ...] = (1 << 16, 1 << 16, 64),
    kernel: "Kernel | str" = Kernel.TS,
    platform_name: str = "Bluesky",
    cache_scale: float = 1000.0,
    seed: int = 0,
) -> Report:
    """Performance vs non-zero count — locates the cache crossover of
    Observation 2 (small tensors above the DRAM roofline)."""
    kernel = Kernel.coerce(kernel)
    runner = _runner(get_platform(platform_name), cache_scale)
    rows = []
    for i, nnz in enumerate(nnz_values):
        t = powerlaw_tensor(shape, nnz, dense_modes=(2,), seed=seed + i)
        bundle = TensorBundle.prepare(f"nnz{nnz}", t, runner.config)
        for fmt in (Format.COO, Format.HICOO):
            rec = runner.run_kernel(bundle, kernel, fmt)
            rows.append(
                [nnz, fmt.value, rec.gflops, rec.bound_gflops,
                 rec.efficiency, rec.extra.get("cache_resident", "")]
            )
    return Report(
        f"sweep-nnz-{kernel.value}",
        f"{kernel.value} performance vs nnz on {platform_name} "
        f"(cache crossover study)",
        ["nnz", "format", "gflops", "bound", "efficiency", "cache_resident"],
        rows,
    )


def rank_sweep(
    ranks: Sequence[int] = (2, 4, 8, 16, 32, 64),
    nnz: int = 50_000,
    shape: tuple[int, ...] = (1 << 14, 1 << 14, 48),
    kernel: "Kernel | str" = Kernel.MTTKRP,
    platform_name: str = "Bluesky",
    cache_scale: float = 1000.0,
    seed: int = 1,
) -> Report:
    """Performance vs matrix rank R — Table 1's OI grows with R, so the
    kernels climb the roofline until compute effects flatten them."""
    kernel = Kernel.coerce(kernel)
    platform = get_platform(platform_name)
    t = powerlaw_tensor(shape, nnz, dense_modes=(2,), seed=seed)
    rows = []
    for r in ranks:
        cfg = RunnerConfig(rank=r, measure_host=False, cache_scale=cache_scale)
        runner = SuiteRunner(platform, cfg)
        bundle = TensorBundle.prepare(f"r{r}", t, cfg)
        for fmt in (Format.COO, Format.HICOO):
            rec = runner.run_kernel(bundle, kernel, fmt)
            rows.append([r, fmt.value, rec.gflops, rec.bound_gflops, rec.efficiency])
    return Report(
        f"sweep-rank-{kernel.value}",
        f"{kernel.value} performance vs rank R on {platform_name}",
        ["rank", "format", "gflops", "bound", "efficiency"],
        rows,
    )


def density_sweep(
    densities: Sequence[float] = (1e-7, 1e-6, 1e-5, 1e-4),
    nnz: int = 40_000,
    kernel: "Kernel | str" = Kernel.MTTKRP,
    platform_name: str = "Bluesky",
    cache_scale: float = 1000.0,
    seed: int = 2,
) -> Report:
    """Performance vs density at fixed nnz (dimension sizes vary):
    sparser tensors spread over more HiCOO blocks, eroding its advantage
    — the gHiCOO motivation, swept."""
    kernel = Kernel.coerce(kernel)
    runner = _runner(get_platform(platform_name), cache_scale)
    rows = []
    for i, density in enumerate(densities):
        # cubical 3rd-order with dense short mode of 32
        side = max(8, int(round((nnz / (density * 32)) ** 0.5)))
        t = powerlaw_tensor(
            (side, side, 32), min(nnz, side * side * 16),
            dense_modes=(2,), seed=seed + i,
        )
        bundle = TensorBundle.prepare(f"d{density:g}", t, runner.config)
        alpha = bundle.features.nnz / max(bundle.features.nb, 1)
        for fmt in (Format.COO, Format.HICOO):
            rec = runner.run_kernel(bundle, kernel, fmt)
            rows.append(
                [f"{density:g}", side, fmt.value, round(alpha, 2),
                 rec.gflops, rec.efficiency]
            )
    return Report(
        f"sweep-density-{kernel.value}",
        f"{kernel.value} performance vs density on {platform_name} "
        "(HiCOO block-occupancy erosion)",
        ["density", "side", "format", "nnz_per_block", "gflops", "efficiency"],
        rows,
    )


def blocksize_sweep(
    block_sizes: Sequence[int] = (8, 16, 32, 64, 128, 256),
    tensor: COOTensor | None = None,
    kernel: "Kernel | str" = Kernel.MTTKRP,
    platform: PlatformSpec = BLUESKY,
    cache_scale: float = 1000.0,
    seed: int = 3,
) -> Report:
    """Modeled performance and storage vs HiCOO block size B."""
    kernel = Kernel.coerce(kernel)
    if tensor is None:
        tensor = powerlaw_tensor(
            (1 << 14, 1 << 14, 48), 50_000, dense_modes=(2,), seed=seed
        )
    rows = []
    for b in block_sizes:
        cfg = RunnerConfig(
            block_size=b, measure_host=False, cache_scale=cache_scale
        )
        runner = SuiteRunner(platform, cfg)
        bundle = TensorBundle.prepare(f"B{b}", tensor, cfg)
        rec = runner.run_kernel(bundle, kernel, Format.HICOO)
        rows.append(
            [b, bundle.hicoo.nblocks,
             round(tensor.nnz / max(bundle.hicoo.nblocks, 1), 2),
             bundle.hicoo.nbytes, rec.gflops, rec.efficiency]
        )
    return Report(
        f"sweep-blocksize-{kernel.value}",
        f"HiCOO {kernel.value} vs block size B on {platform.name}",
        ["B", "nblocks", "nnz_per_block", "hicoo_bytes", "gflops", "efficiency"],
        rows,
    )
