"""Benchmark harness: runner, CPU model, and table/figure experiments."""

from repro.bench.cpumodel import CpuTiming, modeled_cpu_time
from repro.bench.experiments import (
    EXPERIMENTS,
    Report,
    figure3,
    figure3_series,
    figure_perf,
    observations,
    table1,
    table2,
    table3,
    table4,
)
from repro.bench.sweeps import (
    blocksize_sweep,
    density_sweep,
    nnz_sweep,
    rank_sweep,
)
from repro.bench.runner import (
    ALL_KERNELS,
    BENCH_FORMATS,
    RunnerConfig,
    SuiteRunner,
    TensorBundle,
)

__all__ = [
    "SuiteRunner",
    "RunnerConfig",
    "TensorBundle",
    "ALL_KERNELS",
    "BENCH_FORMATS",
    "modeled_cpu_time",
    "CpuTiming",
    "Report",
    "EXPERIMENTS",
    "table1",
    "table2",
    "table3",
    "table4",
    "figure3",
    "figure3_series",
    "figure_perf",
    "observations",
    "nnz_sweep",
    "rank_sweep",
    "density_sweep",
    "blocksize_sweep",
]
