"""Benchmark driver: run the five kernels over tensors, formats, platforms.

For every (tensor, kernel, format) the runner produces a
:class:`~repro.metrics.perf.PerfRecord` with

* the paper-platform execution time — modeled analytically for the two
  CPU platforms (:mod:`repro.bench.cpumodel`) and simulated for the two
  GPUs (:mod:`repro.gpu`);
* the *measured host* wall-clock of the actual NumPy kernel (the paper's
  measurement protocol: warm-up + averaged repeats, mode-oriented kernels
  averaged over modes);
* the per-tensor roofline bound and efficiency.

The paper benchmarks Tew via addition and Ts via multiplication with both
operands sharing a pattern (Sec. 5.1.2); the runner follows that.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.types import DEFAULT_BLOCK_SIZE, DEFAULT_RANK, Format, Kernel
from repro.kernels import (
    coo_mttkrp,
    coo_tew,
    coo_ts,
    coo_ttm,
    coo_ttv,
    hicoo_mttkrp,
    hicoo_tew,
    hicoo_ts,
    hicoo_ttm,
    hicoo_ttv,
)
from repro.bench.cpumodel import modeled_cpu_time
from repro.gpu.device import DeviceSpec
from repro.gpu.kernels import (
    gpu_coo_mttkrp,
    gpu_hicoo_mttkrp,
    gpu_tew,
    gpu_ts,
    gpu_ttm,
    gpu_ttv,
)
from repro.metrics.perf import PerfRecord, efficiency, gflops
from repro.metrics.stats import mean_over_modes
from repro.parallel.backend import Backend, get_backend
from repro.roofline.model import RooflineModel
from repro.roofline.oi import TensorFeatures, cost_for, extract_features
from repro.roofline.platform import PlatformSpec
from repro.sptensor.coo import COOTensor
from repro.sptensor.hicoo import HiCOOTensor
from repro.util.prng import rng_from_seed
from repro.util.timing import time_call

ALL_KERNELS = (Kernel.TEW, Kernel.TS, Kernel.TTV, Kernel.TTM, Kernel.MTTKRP)
BENCH_FORMATS = (Format.COO, Format.HICOO)


@dataclass
class RunnerConfig:
    """Knobs of a benchmark sweep (paper defaults)."""

    rank: int = DEFAULT_RANK
    block_size: int = DEFAULT_BLOCK_SIZE
    repeats: int = 3  # paper uses 5; 3 keeps suite runtime modest
    warmup: int = 1
    measure_host: bool = True
    backend: "Backend | str | None" = None
    kernels: Sequence[Kernel] = ALL_KERNELS
    formats: Sequence[Format] = BENCH_FORMATS
    seed: int = 0
    #: Datasets are downscaled by this factor relative to the paper's
    #: (DESIGN.md); the platform caches are scaled down in proportion so
    #: the cache crossovers of Observation 2 land on the same *relative*
    #: tensor sizes.  1.0 = paper-scale tensors.
    cache_scale: float = 1.0
    #: Record a span trace per (kernel, format) measurement and attach the
    #: load-imbalance analytics (:func:`repro.obs.analyze`) to
    #: ``PerfRecord.extra["obs"]``.  Off by default — tracing perturbs the
    #: host timings it observes.
    trace: bool = False


@dataclass
class TensorBundle:
    """One tensor prepared in every representation the sweep needs."""

    name: str
    coo: COOTensor
    hicoo: HiCOOTensor
    features: TensorFeatures
    vectors: list  # one per mode
    matrices: list  # one per mode, (I_m, R)

    @classmethod
    def prepare(
        cls,
        name: str,
        tensor: COOTensor,
        config: RunnerConfig,
    ) -> "TensorBundle":
        rng = rng_from_seed(config.seed)
        coo = tensor.copy().sort()
        hicoo = HiCOOTensor.from_coo(coo, config.block_size)
        feats = extract_features(coo, name, config.block_size, hicoo)
        vectors = [
            rng.random(s).astype(np.float32) for s in coo.shape
        ]
        matrices = [
            rng.random((s, config.rank)).astype(np.float32)
            for s in coo.shape
        ]
        return cls(name, coo, hicoo, feats, vectors, matrices)


class SuiteRunner:
    """Runs the suite's kernels against one paper platform."""

    def __init__(
        self,
        platform: PlatformSpec,
        config: RunnerConfig | None = None,
        device: DeviceSpec | None = None,
    ):
        self.config = config or RunnerConfig()
        if self.config.cache_scale > 1.0:
            platform = platform.with_overrides(
                llc_bytes=max(4096, int(platform.llc_bytes / self.config.cache_scale))
            )
        self.platform = platform
        self.roofline = RooflineModel(platform)
        if platform.is_gpu and device is None:
            device = DeviceSpec.from_platform(
                platform,
                address_overlap=0.6 if platform.microarch == "Volta" else 0.0,
            )
            if self.config.cache_scale > 1.0:
                device = device.scaled(self.config.cache_scale)
        self.device = device
        self.backend = get_backend(self.config.backend)

    # ------------------------------------------------------------------ #
    def run_tensor(
        self, name: str, tensor: COOTensor
    ) -> list[PerfRecord]:
        """All configured (kernel, format) pairs on one tensor."""
        bundle = TensorBundle.prepare(name, tensor, self.config)
        records = []
        for kernel in self.config.kernels:
            for fmt in self.config.formats:
                records.append(self.run_kernel(bundle, kernel, fmt))
        return records

    def run_kernel(
        self,
        bundle: TensorBundle,
        kernel: "Kernel | str",
        fmt: "Format | str",
    ) -> PerfRecord:
        kernel = Kernel.coerce(kernel)
        fmt = Format.coerce(fmt)
        cost = cost_for(bundle.features, kernel, fmt, self.config.rank)
        bound = self.roofline.attainable(cost.oi)
        tracer = None
        if self.config.trace:
            from repro.obs import Tracer

            tracer = Tracer(
                meta={
                    "tensor": bundle.name,
                    "kernel": kernel.value,
                    "fmt": fmt.value,
                    "platform": self.platform.name,
                }
            ).install()
        try:
            if self.platform.is_gpu:
                seconds, host_seconds, extra = self._gpu_time(bundle, kernel, fmt)
            else:
                timing = modeled_cpu_time(
                    self.platform, kernel, fmt, bundle.features, self.config.rank
                )
                seconds = timing.total_s
                extra = {
                    "memory_s": timing.memory_s,
                    "fiber_s": timing.fiber_s,
                    "atomic_s": timing.atomic_s,
                    "cache_resident": timing.cache_resident,
                }
                host_seconds = (
                    self._host_time(bundle, kernel, fmt)
                    if self.config.measure_host
                    else 0.0
                )
        finally:
            if tracer is not None:
                tracer.uninstall()
        if tracer is not None:
            from repro.obs import analyze

            extra = dict(extra, obs=analyze(tracer.freeze()).as_dict())
        g = gflops(cost.flops, seconds)
        return PerfRecord(
            tensor=bundle.name,
            kernel=kernel.value,
            fmt=fmt.value,
            platform=self.platform.name,
            flops=cost.flops,
            seconds=seconds,
            gflops=g,
            bound_gflops=bound,
            efficiency=efficiency(g, bound),
            host_seconds=host_seconds,
            host_gflops=gflops(cost.flops, host_seconds),
            extra=extra,
        )

    # ------------------------------------------------------------------ #
    def _host_time(self, bundle: TensorBundle, kernel: Kernel, fmt: Format) -> float:
        """Measured wall-clock of the NumPy kernel on this machine."""
        cfg = self.config
        x = bundle.coo if fmt is Format.COO else bundle.hicoo
        be = self.backend
        if kernel is Kernel.TEW:
            fn = (
                (lambda: coo_tew(x, x, "add", be, assume_same_pattern=True))
                if fmt is Format.COO
                else (lambda: hicoo_tew(x, x, "add", be, assume_same_pattern=True))
            )
            return time_call(fn, cfg.repeats, cfg.warmup).seconds
        if kernel is Kernel.TS:
            fn = (
                (lambda: coo_ts(x, 1.5, "mul", be))
                if fmt is Format.COO
                else (lambda: hicoo_ts(x, 1.5, "mul", be))
            )
            return time_call(fn, cfg.repeats, cfg.warmup).seconds
        # Mode-oriented kernels: average over all modes (paper protocol).
        times = []
        for mode in range(bundle.coo.nmodes):
            if kernel is Kernel.TTV:
                v = bundle.vectors[mode]
                fn = (
                    (lambda: coo_ttv(bundle.coo, v, mode, be))
                    if fmt is Format.COO
                    else (lambda: hicoo_ttv(bundle.hicoo, v, mode, be))
                )
            elif kernel is Kernel.TTM:
                u = bundle.matrices[mode]
                fn = (
                    (lambda: coo_ttm(bundle.coo, u, mode, be))
                    if fmt is Format.COO
                    else (lambda: hicoo_ttm(bundle.hicoo, u, mode, be))
                )
            elif kernel is Kernel.MTTKRP:
                fn = (
                    (lambda: coo_mttkrp(bundle.coo, bundle.matrices, mode, be))
                    if fmt is Format.COO
                    else (lambda: hicoo_mttkrp(bundle.hicoo, bundle.matrices, mode, be))
                )
            else:  # pragma: no cover - exhaustive above
                raise ValueError(kernel)
            times.append(time_call(fn, cfg.repeats, cfg.warmup).seconds)
        return mean_over_modes(times)

    def _gpu_time(
        self, bundle: TensorBundle, kernel: Kernel, fmt: Format
    ) -> tuple[float, float, dict]:
        """Simulated GPU time (mode-averaged), plus the host wall-clock of
        the numeric execution embedded in the simulation."""
        dev = self.device
        x = bundle.coo if fmt is Format.COO else bundle.hicoo
        host = 0.0
        if kernel is Kernel.TEW:
            res = gpu_tew(x, x, "add", dev, assume_same_pattern=True)
            return res.seconds, host, dict(res.timing.notes, imbalance=res.timing.imbalance)
        if kernel is Kernel.TS:
            res = gpu_ts(x, 1.5, "mul", dev)
            return res.seconds, host, dict(res.timing.notes, imbalance=res.timing.imbalance)
        times, notes = [], {}
        for mode in range(bundle.coo.nmodes):
            if kernel is Kernel.TTV:
                res = gpu_ttv(x, bundle.vectors[mode], mode, dev)
            elif kernel is Kernel.TTM:
                res = gpu_ttm(x, bundle.matrices[mode], mode, dev)
            elif kernel is Kernel.MTTKRP:
                res = (
                    gpu_coo_mttkrp(x, bundle.matrices, mode, dev)
                    if fmt is Format.COO
                    else gpu_hicoo_mttkrp(x, bundle.matrices, mode, dev)
                )
            else:  # pragma: no cover - exhaustive above
                raise ValueError(kernel)
            times.append(res.seconds)
            notes = dict(res.timing.notes, imbalance=res.timing.imbalance)
        return mean_over_modes(times), host, notes

    # ------------------------------------------------------------------ #
    def run_dataset(
        self, tensors: dict[str, COOTensor]
    ) -> list[PerfRecord]:
        """Run the full sweep over a named tensor collection."""
        records: list[PerfRecord] = []
        for name, tensor in tensors.items():
            records.extend(self.run_tensor(name, tensor))
        return records
