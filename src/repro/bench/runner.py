"""Benchmark driver: run the five kernels over tensors, formats, platforms.

For every (tensor, kernel, format) the runner produces a
:class:`~repro.metrics.perf.PerfRecord` with

* the paper-platform execution time — modeled analytically for the two
  CPU platforms (:mod:`repro.bench.cpumodel`) and simulated for the two
  GPUs (:mod:`repro.gpu`);
* the *measured host* wall-clock of the actual NumPy kernel (the paper's
  measurement protocol: warm-up + averaged repeats, mode-oriented kernels
  averaged over modes);
* the per-tensor roofline bound and efficiency.

The paper benchmarks Tew via addition and Ts via multiplication with both
operands sharing a pattern (Sec. 5.1.2); the runner follows that.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.types import DEFAULT_BLOCK_SIZE, DEFAULT_RANK, Format, Kernel
from repro.kernels import (
    coo_mttkrp,
    coo_tew,
    coo_ts,
    coo_ttm,
    coo_ttv,
    hicoo_mttkrp,
    hicoo_tew,
    hicoo_ts,
    hicoo_ttm,
    hicoo_ttv,
)
from repro.bench.cpumodel import modeled_cpu_time
from repro.gpu.device import DeviceSpec
from repro.gpu.kernels import (
    gpu_coo_mttkrp,
    gpu_hicoo_mttkrp,
    gpu_tew,
    gpu_ts,
    gpu_ttm,
    gpu_ttv,
)
from repro.metrics.perf import PerfRecord, efficiency, gflops
from repro.metrics.stats import mean_over_modes
from repro.obs.attribution import attach_to_trace, attribute
from repro.obs.tracer import CAT_KERNEL, current_tracer
from repro.parallel.backend import Backend, get_backend
from repro.roofline.model import RooflineModel
from repro.roofline.oi import TensorFeatures, cost_for, extract_features
from repro.roofline.platform import PlatformSpec
from repro.sptensor.coo import COOTensor
from repro.sptensor.hicoo import HiCOOTensor
from repro.util.prng import rng_from_seed
from repro.util.timing import time_call

ALL_KERNELS = (Kernel.TEW, Kernel.TS, Kernel.TTV, Kernel.TTM, Kernel.MTTKRP)
BENCH_FORMATS = (Format.COO, Format.HICOO)

#: ``"kernel:seconds,kernel:seconds"`` — injects a per-call sleep into the
#: host-measured path of the named kernels.  Exists so the perf-gate CI
#: job (and local checks) can synthesize a regression the sentinel must
#: catch; it propagates into sweep worker subprocesses via the inherited
#: environment.  Unset or empty = zero overhead.
PERF_DRAG_ENV = "REPRO_PERF_DRAG"


def _drag_seconds(kernel: Kernel) -> float:
    """The injected slowdown configured for ``kernel`` (0.0 normally)."""
    spec = os.environ.get(PERF_DRAG_ENV, "")
    if not spec:
        return 0.0
    for part in spec.split(","):
        name, sep, secs = part.partition(":")
        if sep and name.strip() == kernel.value:
            try:
                return max(0.0, float(secs))
            except ValueError:
                return 0.0
    return 0.0


def _with_drag(fn, drag_s: float):
    """Wrap a timed callable with the configured synthetic slowdown."""
    if drag_s <= 0.0:
        return fn

    def dragged():
        time.sleep(drag_s)
        return fn()

    return dragged


def fingerprint_schema_version() -> str:
    """Stable 12-hex-digit hash of the :class:`SweepCase` field set.

    A case fingerprint is a hash over every ``SweepCase`` field, so two
    fingerprints are only comparable when they were computed under the
    same field set: adding, removing or renaming a field silently changes
    every fingerprint.  Run-store journals stamp this value in their
    header line so a cache lookup against a store written under a
    different field set is rejected loudly instead of missing (or worse,
    falsely hitting) every case.
    """
    import dataclasses

    names = "\x1f".join(f.name for f in dataclasses.fields(SweepCase))
    return hashlib.sha256(names.encode("utf-8")).hexdigest()[:12]


def derive_case_seed(base_seed: int, *parts) -> int:
    """A stable 63-bit seed from ``base_seed`` and string-able ``parts``.

    Every per-case RNG in the sweep derives its seed this way, so the
    random inputs of a case depend only on *what the case is* — never on
    how many cases ran before it from a shared RNG.  That is the property
    that makes a sharded or resumed sweep produce records bit-identical
    to one uninterrupted in-process run.
    """
    text = "\x1f".join([str(int(base_seed))] + [str(p) for p in parts])
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") & ((1 << 63) - 1)


@dataclass
class RunnerConfig:
    """Knobs of a benchmark sweep (paper defaults)."""

    rank: int = DEFAULT_RANK
    block_size: int = DEFAULT_BLOCK_SIZE
    repeats: int = 3  # paper uses 5; 3 keeps suite runtime modest
    warmup: int = 1
    measure_host: bool = True
    backend: "Backend | str | None" = None
    kernels: Sequence[Kernel] = ALL_KERNELS
    formats: Sequence[Format] = BENCH_FORMATS
    seed: int = 0
    #: Datasets are downscaled by this factor relative to the paper's
    #: (DESIGN.md); the platform caches are scaled down in proportion so
    #: the cache crossovers of Observation 2 land on the same *relative*
    #: tensor sizes.  1.0 = paper-scale tensors.
    cache_scale: float = 1.0
    #: Record a span trace per (kernel, format) measurement and attach the
    #: load-imbalance analytics (:func:`repro.obs.analyze`) to
    #: ``PerfRecord.extra["obs"]``.  Off by default — tracing perturbs the
    #: host timings it observes.
    trace: bool = False


@dataclass
class TensorBundle:
    """One tensor prepared in every representation the sweep needs."""

    name: str
    coo: COOTensor
    hicoo: HiCOOTensor
    features: TensorFeatures
    vectors: list  # one per mode
    matrices: list  # one per mode, (I_m, R)

    @classmethod
    def prepare(
        cls,
        name: str,
        tensor: COOTensor,
        config: RunnerConfig,
    ) -> "TensorBundle":
        # Vectors/matrices are seeded from (config.seed, tensor name), not
        # from a shared RNG, so a bundle's random operands are identical
        # whether the tensor is first, last, or alone in a sweep.
        rng = rng_from_seed(derive_case_seed(config.seed, "bundle", name))
        coo = tensor.copy().sort()
        hicoo = HiCOOTensor.from_coo(coo, config.block_size)
        feats = extract_features(coo, name, config.block_size, hicoo)
        vectors = [
            rng.random(s).astype(np.float32) for s in coo.shape
        ]
        matrices = [
            rng.random((s, config.rank)).astype(np.float32)
            for s in coo.shape
        ]
        return cls(name, coo, hicoo, feats, vectors, matrices)


@dataclass(frozen=True)
class SweepCase:
    """One (tensor, kernel, format, platform) cell of a sweep.

    A case is fully self-describing: ``tensor_spec`` says how to
    *materialize* the tensor (registry key / file / random parameters),
    and the measurement knobs are copied out of the
    :class:`RunnerConfig`, so a worker subprocess can reconstruct and run
    the case from its JSON form alone.  Identity is the
    :attr:`fingerprint` — a stable hash of every field — and the case's
    RNG seed derives from that fingerprint, never from enumeration
    order.
    """

    tensor: str
    kernel: str
    fmt: str
    platform: str
    #: Canonical ``(key, value)`` pairs describing tensor materialization
    #: (see :func:`repro.bench.executor.materialize_tensor`).
    tensor_spec: tuple
    rank: int = DEFAULT_RANK
    block_size: int = DEFAULT_BLOCK_SIZE
    repeats: int = 3
    warmup: int = 1
    measure_host: bool = False
    backend: "str | None" = None
    base_seed: int = 0
    cache_scale: float = 1.0

    @property
    def fingerprint(self) -> str:
        """Stable 16-hex-digit identity of this case."""
        payload = json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]

    @property
    def case_seed(self) -> int:
        """The case's RNG seed, derived from the fingerprint."""
        return derive_case_seed(0, "case", self.fingerprint)

    def to_dict(self) -> dict:
        return {
            "tensor": self.tensor,
            "kernel": self.kernel,
            "fmt": self.fmt,
            "platform": self.platform,
            "tensor_spec": [list(kv) for kv in self.tensor_spec],
            "rank": self.rank,
            "block_size": self.block_size,
            "repeats": self.repeats,
            "warmup": self.warmup,
            "measure_host": self.measure_host,
            "backend": self.backend,
            "base_seed": self.base_seed,
            "cache_scale": self.cache_scale,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "SweepCase":
        d = dict(d)
        # Canonicalize so a JSON round-trip (lists for tuples) compares
        # and fingerprints identically to the original case.
        d["tensor_spec"] = canonical_tensor_spec(d["tensor_spec"])
        return cls(**d)

    def runner_config(self) -> RunnerConfig:
        """The :class:`RunnerConfig` reproducing this case's measurement."""
        return RunnerConfig(
            rank=self.rank,
            block_size=self.block_size,
            repeats=self.repeats,
            warmup=self.warmup,
            measure_host=self.measure_host,
            backend=self.backend,
            kernels=(Kernel.coerce(self.kernel),),
            formats=(Format.coerce(self.fmt),),
            seed=self.base_seed,
            cache_scale=self.cache_scale,
        )


def canonical_tensor_spec(spec: "dict | tuple") -> tuple:
    """Normalize a tensor spec to sorted, hashable ``(key, value)`` pairs."""
    items = dict(spec).items()
    out = []
    for k, v in sorted(items):
        if isinstance(v, (list, tuple)):
            v = tuple(int(x) for x in v)
        out.append((str(k), v))
    return tuple(out)


def enumerate_cases(
    tensor_specs: "dict[str, dict | tuple]",
    config: "RunnerConfig | None" = None,
    platforms: Sequence[str] = ("Bluesky",),
) -> "list[SweepCase]":
    """The deterministic case list of a sweep.

    Order is platform-major, then tensor name (sorted — independent of
    the mapping's insertion order), then the config's kernel and format
    order.  Two calls with equal inputs produce the identical list, which
    is what shard partitioning (``index % shards``) relies on.
    """
    config = config or RunnerConfig()
    cases = []
    for platform in platforms:
        for name in sorted(tensor_specs):
            spec = canonical_tensor_spec(tensor_specs[name])
            for kernel in config.kernels:
                for fmt in config.formats:
                    cases.append(
                        SweepCase(
                            tensor=name,
                            kernel=Kernel.coerce(kernel).value,
                            fmt=Format.coerce(fmt).value,
                            platform=platform,
                            tensor_spec=spec,
                            rank=config.rank,
                            block_size=config.block_size,
                            repeats=config.repeats,
                            warmup=config.warmup,
                            measure_host=config.measure_host,
                            backend=(
                                config.backend
                                if isinstance(config.backend, (str, type(None)))
                                else config.backend.name
                            ),
                            base_seed=config.seed,
                            cache_scale=config.cache_scale,
                        )
                    )
    return cases


class SuiteRunner:
    """Runs the suite's kernels against one paper platform."""

    def __init__(
        self,
        platform: PlatformSpec,
        config: RunnerConfig | None = None,
        device: DeviceSpec | None = None,
    ):
        self.config = config or RunnerConfig()
        if self.config.cache_scale > 1.0:
            platform = platform.with_overrides(
                llc_bytes=max(4096, int(platform.llc_bytes / self.config.cache_scale))
            )
        self.platform = platform
        self.roofline = RooflineModel(platform)
        if platform.is_gpu and device is None:
            device = DeviceSpec.from_platform(
                platform,
                address_overlap=0.6 if platform.microarch == "Volta" else 0.0,
            )
            if self.config.cache_scale > 1.0:
                device = device.scaled(self.config.cache_scale)
        self.device = device
        self.backend = get_backend(self.config.backend)

    # ------------------------------------------------------------------ #
    def run_tensor(
        self, name: str, tensor: COOTensor
    ) -> list[PerfRecord]:
        """All configured (kernel, format) pairs on one tensor."""
        bundle = TensorBundle.prepare(name, tensor, self.config)
        records = []
        for kernel in self.config.kernels:
            for fmt in self.config.formats:
                records.append(self.run_kernel(bundle, kernel, fmt))
        return records

    def run_kernel(
        self,
        bundle: TensorBundle,
        kernel: "Kernel | str",
        fmt: "Format | str",
    ) -> PerfRecord:
        kernel = Kernel.coerce(kernel)
        fmt = Format.coerce(fmt)
        cost = cost_for(bundle.features, kernel, fmt, self.config.rank)
        bound = self.roofline.attainable(cost.oi)
        tracer = None
        if self.config.trace:
            from repro.obs import Tracer

            tracer = Tracer(
                meta={
                    "tensor": bundle.name,
                    "kernel": kernel.value,
                    "fmt": fmt.value,
                    "platform": self.platform.name,
                }
            ).install()
        # The whole measurement gets one top-level kernel span (named
        # ``run.`` to keep it distinct from real kernel-internal spans),
        # so a trace always carries a CAT_KERNEL event — including on
        # the modeled path, where no host kernel ever runs.  Reading the
        # active tracer *after* the optional install means a per-case
        # config.trace tracer (or a worker's installed request tracer)
        # records it; disabled, this is the shared null context.
        obs = current_tracer()
        try:
            with obs.span(
                f"run.{kernel.value}",
                cat=CAT_KERNEL,
                tensor=bundle.name,
                fmt=fmt.value,
                platform=self.platform.name,
            ):
                if self.platform.is_gpu:
                    seconds, host_seconds, extra = self._gpu_time(bundle, kernel, fmt)
                else:
                    timing = modeled_cpu_time(
                        self.platform, kernel, fmt, bundle.features, self.config.rank
                    )
                    seconds = timing.total_s
                    extra = {
                        "memory_s": timing.memory_s,
                        "fiber_s": timing.fiber_s,
                        "atomic_s": timing.atomic_s,
                        "cache_resident": timing.cache_resident,
                    }
                    host_seconds = (
                        self._host_time(bundle, kernel, fmt)
                        if self.config.measure_host
                        else 0.0
                    )
        finally:
            if tracer is not None:
                tracer.uninstall()
        # Roofline attribution: explain this measurement against its bound
        # (rides in extra["roofline"] and therefore into run-store lines).
        attribution = attribute(self.roofline, cost, seconds, host_seconds)
        extra = dict(extra, roofline=attribution.as_dict())
        if tracer is not None:
            from repro.obs import analyze

            trace = attach_to_trace(tracer.freeze(), attribution)
            extra["obs"] = analyze(trace).as_dict()
        g = gflops(cost.flops, seconds)
        return PerfRecord(
            tensor=bundle.name,
            kernel=kernel.value,
            fmt=fmt.value,
            platform=self.platform.name,
            flops=cost.flops,
            seconds=seconds,
            gflops=g,
            bound_gflops=bound,
            efficiency=efficiency(g, bound),
            host_seconds=host_seconds,
            host_gflops=gflops(cost.flops, host_seconds),
            extra=extra,
        )

    # ------------------------------------------------------------------ #
    def _host_time(self, bundle: TensorBundle, kernel: Kernel, fmt: Format) -> float:
        """Measured wall-clock of the NumPy kernel on this machine.

        Honors :data:`PERF_DRAG_ENV` (a synthetic per-call slowdown used
        by the regression-sentinel gate to fabricate a detectable
        regression).
        """
        cfg = self.config
        drag = _drag_seconds(kernel)
        x = bundle.coo if fmt is Format.COO else bundle.hicoo
        be = self.backend
        if kernel is Kernel.TEW:
            fn = (
                (lambda: coo_tew(x, x, "add", be, assume_same_pattern=True))
                if fmt is Format.COO
                else (lambda: hicoo_tew(x, x, "add", be, assume_same_pattern=True))
            )
            return time_call(_with_drag(fn, drag), cfg.repeats, cfg.warmup).seconds
        if kernel is Kernel.TS:
            fn = (
                (lambda: coo_ts(x, 1.5, "mul", be))
                if fmt is Format.COO
                else (lambda: hicoo_ts(x, 1.5, "mul", be))
            )
            return time_call(_with_drag(fn, drag), cfg.repeats, cfg.warmup).seconds
        # Mode-oriented kernels: average over all modes (paper protocol).
        times = []
        for mode in range(bundle.coo.nmodes):
            if kernel is Kernel.TTV:
                v = bundle.vectors[mode]
                fn = (
                    (lambda: coo_ttv(bundle.coo, v, mode, be))
                    if fmt is Format.COO
                    else (lambda: hicoo_ttv(bundle.hicoo, v, mode, be))
                )
            elif kernel is Kernel.TTM:
                u = bundle.matrices[mode]
                fn = (
                    (lambda: coo_ttm(bundle.coo, u, mode, be))
                    if fmt is Format.COO
                    else (lambda: hicoo_ttm(bundle.hicoo, u, mode, be))
                )
            elif kernel is Kernel.MTTKRP:
                fn = (
                    (lambda: coo_mttkrp(bundle.coo, bundle.matrices, mode, be))
                    if fmt is Format.COO
                    else (lambda: hicoo_mttkrp(bundle.hicoo, bundle.matrices, mode, be))
                )
            else:  # pragma: no cover - exhaustive above
                raise ValueError(kernel)
            times.append(time_call(_with_drag(fn, drag), cfg.repeats, cfg.warmup).seconds)
        return mean_over_modes(times)

    def _gpu_time(
        self, bundle: TensorBundle, kernel: Kernel, fmt: Format
    ) -> tuple[float, float, dict]:
        """Simulated GPU time (mode-averaged), plus the host wall-clock of
        the numeric execution embedded in the simulation."""
        dev = self.device
        x = bundle.coo if fmt is Format.COO else bundle.hicoo
        host = 0.0
        if kernel is Kernel.TEW:
            res = gpu_tew(x, x, "add", dev, assume_same_pattern=True)
            return res.seconds, host, dict(res.timing.notes, imbalance=res.timing.imbalance)
        if kernel is Kernel.TS:
            res = gpu_ts(x, 1.5, "mul", dev)
            return res.seconds, host, dict(res.timing.notes, imbalance=res.timing.imbalance)
        times, notes = [], {}
        for mode in range(bundle.coo.nmodes):
            if kernel is Kernel.TTV:
                res = gpu_ttv(x, bundle.vectors[mode], mode, dev)
            elif kernel is Kernel.TTM:
                res = gpu_ttm(x, bundle.matrices[mode], mode, dev)
            elif kernel is Kernel.MTTKRP:
                res = (
                    gpu_coo_mttkrp(x, bundle.matrices, mode, dev)
                    if fmt is Format.COO
                    else gpu_hicoo_mttkrp(x, bundle.matrices, mode, dev)
                )
            else:  # pragma: no cover - exhaustive above
                raise ValueError(kernel)
            times.append(res.seconds)
            notes = dict(res.timing.notes, imbalance=res.timing.imbalance)
        return mean_over_modes(times), host, notes

    # ------------------------------------------------------------------ #
    def run_dataset(
        self, tensors: dict[str, COOTensor]
    ) -> list[PerfRecord]:
        """Run the full sweep over a named tensor collection."""
        records: list[PerfRecord] = []
        for name, tensor in tensors.items():
            records.extend(self.run_tensor(name, tensor))
        return records
