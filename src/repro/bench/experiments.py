"""Reproduction of every table and figure of the paper's evaluation.

Each ``table*``/``figure*`` function returns a :class:`Report` with the
rows the paper prints (tables) or plots (figures become data series).  The
CLI (``python -m repro bench --exp <id>``) and the pytest benchmarks in
``benchmarks/`` both drive these functions.

Scale: figures run against downscaled datasets (default ``scale=1000`` —
nnz shrunk 1000x, density regimes preserved; see DESIGN.md).  Absolute
GFLOPS therefore differ from the paper; the *shapes* — kernel ordering,
COO vs HiCOO, platform contrasts, above-roofline cache cases — are the
reproduction targets, checked in :func:`observations`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.types import DEFAULT_RANK, Format, Kernel
from repro.bench.runner import RunnerConfig, SuiteRunner
from repro.datasets.registry import REAL_TENSORS
from repro.datasets.surrogate import surrogate_nnz, surrogate_shape, surrogate_suite
from repro.generate.registry import SYNTHETIC_TENSORS, generate_suite
from repro.metrics.perf import PERF_HEADERS, PerfRecord
from repro.metrics.stats import average_efficiency, average_gflops, gflops_range
from repro.roofline.model import RooflineModel
from repro.roofline.platform import PLATFORMS, get_platform
from repro.util.tables import render_table, write_csv


@dataclass
class Report:
    """One reproduced table or figure."""

    exp_id: str
    title: str
    headers: list[str]
    rows: list[list]
    notes: list[str] = field(default_factory=list)
    records: list[PerfRecord] = field(default_factory=list)

    def render(self) -> str:
        text = render_table(self.headers, self.rows, title=f"{self.exp_id}: {self.title}")
        if self.notes:
            text += "\n" + "\n".join(f"  note: {n}" for n in self.notes)
        return text

    def render_chart(self, width: int = 36) -> str:
        """ASCII bar-chart view of a performance figure (records only)."""
        from repro.util.charts import perf_records_chart

        if not self.records:
            return self.render()
        head = f"{self.exp_id}: {self.title}\n" + "=" * 60
        return head + "\n" + perf_records_chart(self.records, width=width)

    def save_csv(self, path) -> None:
        write_csv(path, self.headers, self.rows)


# --------------------------------------------------------------------- #
# Tables
# --------------------------------------------------------------------- #
def table1(m: int = 1_000_000, mf: int = 50_000, r: int = DEFAULT_RANK) -> Report:
    """Table 1: work, memory traffic and OI per kernel (COO and HiCOO),
    instantiated for a representative third-order tensor."""
    from repro.kernels.flops import kernel_cost

    nb = max(1, m // 64)
    rows = []
    symbolic = {
        Kernel.TEW: ("M", "12M", "12M", "1/12"),
        Kernel.TS: ("M", "8M", "8M", "1/8"),
        Kernel.TTV: ("2M", "12M + 12MF", "12M + 12MF", "~1/6"),
        Kernel.TTM: ("2MR", "4MR+4MFR+8M+8MF", "4MR+4MFR+8M+8MF", "~1/2"),
        Kernel.MTTKRP: ("3MR", "12MR + 16M", "12R min{nb*B, M} + 7M + 20nb", "~1/4"),
    }
    for kernel in Kernel:
        coo = kernel_cost(kernel, Format.COO, m, mf=mf, r=r, nb=nb)
        hic = kernel_cost(kernel, Format.HICOO, m, mf=mf, r=r, nb=nb)
        sym = symbolic[kernel]
        rows.append(
            [
                kernel.value,
                sym[0],
                sym[1],
                sym[2],
                sym[3],
                coo.flops,
                coo.bytes,
                hic.bytes,
                round(coo.oi, 4),
                round(hic.oi, 4),
            ]
        )
    return Report(
        "table1",
        "Kernel analysis for third-order tensors "
        f"(example: M={m}, MF={mf}, R={r}, nb={nb}, B=128)",
        [
            "kernel",
            "work",
            "bytes(COO)",
            "bytes(HiCOO)",
            "OI",
            "flops@example",
            "coo_bytes@example",
            "hicoo_bytes@example",
            "coo_oi",
            "hicoo_oi",
        ],
        rows,
    )


def table2(scale: float = 1000.0) -> Report:
    """Table 2: the 15 real tensors, plus the surrogate each maps to."""
    rows = []
    for info in REAL_TENSORS:
        rows.append(
            [
                info.key,
                info.name,
                info.order,
                " x ".join(f"{s:,}" for s in info.shape),
                info.nnz,
                f"{info.density:.2e}",
                " x ".join(str(s) for s in surrogate_shape(info, scale)),
                surrogate_nnz(info, scale),
                info.domain,
            ]
        )
    return Report(
        "table2",
        "Real sparse tensors (paper metadata + surrogate at scale "
        f"{scale:g})",
        [
            "no.",
            "tensor",
            "order",
            "paper dims",
            "paper nnz",
            "density",
            "surrogate dims",
            "surrogate nnz",
            "domain",
        ],
        rows,
        notes=[
            "surrogates are power-law tensors matching order/shape-ratio/"
            "density (FROSTT/HaTen2/CHOA data unavailable offline; see "
            "DESIGN.md substitutions)"
        ],
    )


def table3(scale: float = 1000.0) -> Report:
    """Table 3: the 15 synthetic generator configurations."""
    rows = []
    for cfg in SYNTHETIC_TENSORS:
        rows.append(
            [
                cfg.key,
                cfg.name,
                {"kron": "Kron.", "pl": "PL"}[cfg.generator],
                cfg.order,
                " x ".join(f"{s:,}" for s in cfg.paper_shape),
                cfg.paper_nnz,
                f"{cfg.paper_density:.2e}",
                " x ".join(str(s) for s in cfg.scaled_shape(scale)),
                cfg.scaled_nnz(scale),
            ]
        )
    return Report(
        "table3",
        f"Synthetic tensors (Kronecker / power-law; scaled by {scale:g})",
        [
            "no.",
            "tensor",
            "gen.",
            "order",
            "paper dims",
            "paper nnz",
            "density",
            "scaled dims",
            "scaled nnz",
        ],
        rows,
    )


def table4() -> Report:
    """Table 4: platform parameters."""
    rows = []
    for p in PLATFORMS:
        rows.append(
            [
                p.name,
                p.processor,
                p.microarch,
                p.freq_ghz,
                p.cores,
                p.peak_sp_gflops / 1000.0,
                p.llc_bytes // 1024**2,
                p.mem_gb,
                p.mem_type,
                p.mem_bw_gbs,
                p.ert_dram_bw_gbs,
                p.compiler,
            ]
        )
    return Report(
        "table4",
        "Platform parameters (Table 4) with modeled ERT-DRAM ceilings",
        [
            "platform",
            "processor",
            "microarch",
            "GHz",
            "cores",
            "peak TFLOPS",
            "LLC MB",
            "mem GB",
            "mem type",
            "BW GB/s",
            "ERT-DRAM GB/s",
            "compiler",
        ],
        rows,
    )


# --------------------------------------------------------------------- #
# Figure 3: rooflines
# --------------------------------------------------------------------- #
def figure3() -> Report:
    """Figure 3: roofline models of the four platforms with the Table 1
    kernel OIs marked on the ERT-DRAM line."""
    rows = []
    for p in PLATFORMS:
        model = RooflineModel(p)
        for mark in model.kernel_marks():
            rows.append(
                [
                    p.name,
                    mark.kernel.value,
                    round(mark.oi, 4),
                    round(mark.attainable_gflops, 2),
                    round(model.attainable(mark.oi, "llc"), 2),
                    p.peak_sp_gflops,
                    round(p.ridge_oi, 2),
                    model.memory_bound_kernels(),
                ]
            )
    return Report(
        "fig3",
        "Roofline models with tensor-kernel operational intensities",
        [
            "platform",
            "kernel",
            "oi",
            "ert_dram_gflops",
            "ert_llc_gflops",
            "peak_gflops",
            "ridge_oi",
            "all_memory_bound",
        ],
        rows,
        notes=[
            "every kernel OI lies far left of each platform's ridge point: "
            "all five kernels are memory bound on all four platforms"
        ],
    )


def figure3_series(platform_name: str) -> Report:
    """The continuous roofline curves of one platform (plot data)."""
    p = get_platform(platform_name)
    model = RooflineModel(p)
    rows = [
        [pt["oi"], pt["ert_dram"], pt["ert_llc"], pt["theoretical_dram"], pt["peak"]]
        for pt in model.series()
    ]
    return Report(
        f"fig3-{p.name.lower()}",
        f"Roofline series for {p.name}",
        ["oi", "ert_dram", "ert_llc", "theoretical_dram", "peak"],
        rows,
    )


# --------------------------------------------------------------------- #
# Figures 4-7: kernel performance per platform
# --------------------------------------------------------------------- #
_FIG_PLATFORM = {
    "fig4": "Bluesky",
    "fig5": "Wingtip",
    "fig6": "DGX-1P",
    "fig7": "DGX-1V",
}


def _dataset(kind: str, scale: float, seed: int, keys=None):
    if kind == "real":
        return surrogate_suite(keys=keys, scale=scale, seed=seed)
    if kind == "synthetic":
        return generate_suite(keys=keys, scale=scale, seed=seed)
    raise ValueError(f"unknown dataset kind {kind!r}")


def figure_perf(
    fig_id: str,
    dataset: str = "both",
    scale: float = 1000.0,
    seed: int = 0,
    keys: Sequence[str] | None = None,
    config: RunnerConfig | None = None,
) -> Report:
    """Figures 4-7: single-precision GFLOPS of the five kernels in COO and
    HiCOO on one platform, with the per-tensor roofline bound.

    ``dataset``: "real" reproduces sub-figure (a), "synthetic" (b),
    "both" concatenates them.
    """
    platform = get_platform(_FIG_PLATFORM[fig_id])
    if config is None:
        config = RunnerConfig(cache_scale=scale)
    elif config.cache_scale == 1.0:
        config.cache_scale = scale
    runner = SuiteRunner(platform, config)
    kinds = ("real", "synthetic") if dataset == "both" else (dataset,)
    records: list[PerfRecord] = []
    for kind in kinds:
        tensors = _dataset(kind, scale, seed, keys)
        records.extend(runner.run_dataset(tensors))
    rows = [r.as_row() for r in records]
    avg_g = average_gflops(records)
    notes = [
        f"avg GFLOPS {k[0]}/{k[1]}: {v:.2f}" for k, v in sorted(avg_g.items())
    ]
    return Report(
        fig_id,
        f"Kernel performance on {platform.name} ({dataset} dataset, "
        f"scale {scale:g})",
        PERF_HEADERS,
        rows,
        notes=notes,
        records=records,
    )


# --------------------------------------------------------------------- #
# Observations 1-5
# --------------------------------------------------------------------- #
def observations(
    scale: float = 2000.0,
    seed: int = 0,
    keys_real: Sequence[str] | None = None,
    keys_syn: Sequence[str] | None = None,
    config: RunnerConfig | None = None,
) -> Report:
    """Check the paper's five qualitative observations on the downscaled
    datasets across all four platforms."""
    if config is None:
        config = RunnerConfig(measure_host=False, cache_scale=scale)
    elif config.cache_scale == 1.0:
        config.cache_scale = scale
    per_platform: dict[str, list[PerfRecord]] = {}
    real = _dataset("real", scale, seed, keys_real)
    syn = _dataset("synthetic", scale, seed, keys_syn)
    tensors = {**real, **syn}
    for p in PLATFORMS:
        runner = SuiteRunner(p, config)
        per_platform[p.name] = runner.run_dataset(tensors)

    rows = []

    def add(obs, platform, statement, value, holds):
        rows.append([obs, platform, statement, value, "yes" if holds else "NO"])

    # Obs 1: diverse performance, wide ranges.
    for name, recs in per_platform.items():
        span = gflops_range(recs)
        if span is None:
            add("1", name, "GFLOPS spread min..max", "no data", False)
            continue
        lo, hi = span
        add("1", name, "GFLOPS spread min..max", f"{lo:.2f}..{hi:.2f}", hi > 5 * max(lo, 1e-9))

    # Obs 2: most below roofline; some small/cache-resident above.
    for name, recs in per_platform.items():
        above = [r for r in recs if r.efficiency > 1.0]
        frac_above = len(above) / len(recs)
        add(
            "2",
            name,
            "fraction of cases above roofline (most should be below)",
            f"{frac_above:.2%}",
            frac_above < 0.5,
        )

    # Obs 3: NUMA CPUs struggle on non-streaming kernels; Wingtip (4-socket)
    # Ttv efficiency below Bluesky's.
    eff_bs = average_efficiency(per_platform["Bluesky"])
    eff_wt = average_efficiency(per_platform["Wingtip"])
    add(
        "3",
        "Wingtip vs Bluesky",
        "4-socket Ttv efficiency below 2-socket",
        f"{eff_wt[('ttv', 'coo')]:.2%} < {eff_bs[('ttv', 'coo')]:.2%}",
        eff_wt[("ttv", "coo")] < eff_bs[("ttv", "coo")],
    )
    add(
        "3",
        "Bluesky",
        "Mttkrp efficiency single-digit on CPUs",
        f"{eff_bs[('mttkrp', 'coo')]:.2%}",
        eff_bs[("mttkrp", "coo")] < 0.15,
    )

    # Obs 4: HiCOO >= COO for Tew/Ts/Ttv on CPUs; HiCOO-Mttkrp worse on GPUs.
    g_bs = average_gflops(per_platform["Bluesky"])
    for kern in ("tew", "ts", "ttv"):
        add(
            "4",
            "Bluesky",
            f"HiCOO {kern} >= COO {kern} (avg GFLOPS)",
            f"{g_bs[(kern, 'hicoo')]:.2f} vs {g_bs[(kern, 'coo')]:.2f}",
            g_bs[(kern, "hicoo")] >= 0.95 * g_bs[(kern, "coo")],
        )
    for gpu in ("DGX-1P", "DGX-1V"):
        g = average_gflops(per_platform[gpu])
        add(
            "4",
            gpu,
            "HiCOO-Mttkrp slower than COO-Mttkrp on GPU",
            f"{g[('mttkrp', 'hicoo')]:.2f} vs {g[('mttkrp', 'coo')]:.2f}",
            g[("mttkrp", "hicoo")] <= g[("mttkrp", "coo")] * 1.05,
        )

    # Obs 5: real vs synthetic datasets behave differently.  The paper's
    # claim is per-kernel (synthetic data shows clean size-period trends,
    # real data does not), so compare per-kernel means rather than one
    # aggregate: most kernels should see the datasets disagree.
    real_names = set(real)
    for name, recs in per_platform.items():
        differing = 0
        combos = 0
        for kern in ("tew", "ts", "ttv", "ttm", "mttkrp"):
            r_real = [
                r.gflops for r in recs
                if r.tensor in real_names and r.kernel == kern and r.fmt == "coo"
            ]
            r_syn = [
                r.gflops for r in recs
                if r.tensor not in real_names and r.kernel == kern and r.fmt == "coo"
            ]
            if not r_real or not r_syn:
                continue
            combos += 1
            mr, ms = float(np.mean(r_real)), float(np.mean(r_syn))
            if abs(mr - ms) > 0.05 * max(mr, ms):
                differing += 1
        add(
            "5",
            name,
            "per-kernel real vs synthetic means differ (>5%)",
            f"{differing}/{combos} kernels",
            differing >= max(1, combos // 2),
        )

    return Report(
        "observations",
        "Paper Observations 1-5 checked on the downscaled datasets",
        ["obs", "platform", "statement", "value", "holds"],
        rows,
    )


def _sweep_exp(name):
    def run(**kw):
        from repro.bench import sweeps

        fn = getattr(sweeps, f"{name}_sweep")
        return fn(cache_scale=kw.get("scale", 1000.0))

    return run


EXPERIMENTS = {
    "table1": lambda **kw: table1(),
    "table2": lambda **kw: table2(scale=kw.get("scale", 1000.0)),
    "table3": lambda **kw: table3(scale=kw.get("scale", 1000.0)),
    "table4": lambda **kw: table4(),
    "fig3": lambda **kw: figure3(),
    "fig4": lambda **kw: figure_perf("fig4", **kw),
    "fig5": lambda **kw: figure_perf("fig5", **kw),
    "fig6": lambda **kw: figure_perf("fig6", **kw),
    "fig7": lambda **kw: figure_perf("fig7", **kw),
    "observations": lambda **kw: observations(**kw),
    "sweep-nnz": _sweep_exp("nnz"),
    "sweep-rank": _sweep_exp("rank"),
    "sweep-density": _sweep_exp("density"),
    "sweep-blocksize": _sweep_exp("blocksize"),
}
