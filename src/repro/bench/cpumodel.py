"""Analytic CPU execution-time model for the paper's platforms.

Substitution (DESIGN.md): the paper times C/OpenMP kernels on a 24-core
Skylake (Bluesky) and a 56-core 4-socket Haswell (Wingtip).  Neither
machine is available, so the harness *models* per-tensor execution time
from the same quantities the hardware responds to.  The model is a sum of
physically-motivated components, each visible in the returned breakdown:

``T = T_mem + T_fiber + T_atomic + T_block``

* ``T_mem``   — Table 1 bytes streamed at the ERT ceiling (LLC ceiling
  when the working set fits, reproducing Observation 2's >100%
  efficiencies on small tensors);
* ``T_fiber`` — per-fiber loop overhead for Ttv/Ttm (reduction setup,
  short-fiber tails, output-line ownership).  It scales with the *square*
  of the NUMA factor — fiber outputs and gathered lines bounce across the
  socket interconnect, a superlinear effect — and parallelizes only over
  one socket's cores (the interconnect, not the core count, is the
  bottleneck).  This separates Wingtip's poor Ttv from Bluesky's
  (Observation 3).  Ttm pays the same per-fiber cost but moves R times
  the bytes, so its efficiency stays high — exactly the paper's contrast;
* ``T_atomic`` — Mttkrp's ``omp atomic`` updates: contended cache-line
  ping-pong that parallelizes only as ``sqrt(cores)`` and worsens with
  NUMA, which is why Mttkrp efficiency is single-digit on CPUs;
* ``T_block`` — HiCOO-Mttkrp's per-tensor-block loop overhead (Tew/Ts/
  Ttv/Ttm share the COO value loop and never iterate blocks,
  paper Sec. 3.4.1).

HiCOO variants get a *locality factor* on ``T_mem`` and ``T_fiber``
(Morton-ordered blocks reuse LLC lines; Observation 4) that the GPU model
deliberately lacks (GPU LLCs are too small to benefit).

The time constants below were calibrated once against the paper's
Observation 3 efficiency ranges (Bluesky Ttv/Ttm/Mttkrp ~31/64/6% COO,
Wingtip ~9/52/9%); per-tensor variation then emerges from tensor features
alone.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.types import DEFAULT_RANK, Format, Kernel
from repro.roofline.oi import TensorFeatures, cost_for
from repro.roofline.platform import PlatformSpec

#: Per-fiber loop overhead (seconds) before NUMA/core scaling.
C_FIBER = 4e-9
#: Per atomic update overhead (seconds) before contention/core scaling.
C_ATOMIC = 2.8e-9
#: Per HiCOO-block loop overhead (seconds), Mttkrp only.
C_BLOCK = 60e-9
#: HiCOO locality factor on streamed bytes (CPU only).
HICOO_MEM_FACTOR = 0.9
#: HiCOO locality factor on fiber overhead (blocked fibers stay in LLC).
HICOO_FIBER_FACTOR = 0.4


@dataclass(frozen=True)
class CpuTiming:
    """Breakdown of one modeled CPU kernel execution."""

    total_s: float
    memory_s: float
    fiber_s: float
    atomic_s: float
    block_s: float
    effective_bw_gbs: float
    cache_resident: bool


def _numa_factor(platform: PlatformSpec) -> float:
    """Penalty multiplier for socket-crossing irregular traffic."""
    return 1.0 + platform.numa_penalty * (platform.sockets - 1)


def modeled_cpu_time(
    platform: PlatformSpec,
    kernel: "Kernel | str",
    fmt: "Format | str",
    features: TensorFeatures,
    r: int = DEFAULT_RANK,
    mode: int | None = None,
) -> CpuTiming:
    """Model the execution time of one kernel on one paper CPU platform.

    ``mode=None`` uses the mode-averaged fiber count (the paper averages
    mode-oriented kernels over modes); pass a mode for per-mode times.
    The platform's ``llc_bytes`` decides cache residency — benchmark
    drivers running downscaled tensors scale it down in proportion (see
    ``RunnerConfig.cache_scale``) so the paper's cache crossovers land on
    the same relative tensor sizes.
    """
    kernel = Kernel.coerce(kernel)
    fmt = Format.coerce(fmt)
    cost = cost_for(features, kernel, fmt, r)
    numa = _numa_factor(platform)
    cores_per_socket = max(1, platform.cores // platform.sockets)

    # Memory phase: Table 1 bytes at the cache-aware ERT ceiling.
    resident = cost.bytes <= platform.llc_bytes
    bw = platform.ert_llc_bw_gbs if resident else platform.ert_dram_bw_gbs
    mem_bytes = cost.bytes
    is_hicoo = fmt in (Format.HICOO, Format.GHICOO, Format.SHICOO)
    if is_hicoo:
        mem_bytes *= HICOO_MEM_FACTOR
    t_mem = mem_bytes / (bw * 1e9)

    # Fiber phase (Ttv/Ttm): per-fiber overhead on the socket interconnect.
    t_fiber = 0.0
    if kernel in (Kernel.TTV, Kernel.TTM):
        mf = (
            features.mf_per_mode[mode]
            if mode is not None
            else features.mf_avg
        )
        c = C_FIBER * (HICOO_FIBER_FACTOR if is_hicoo else 1.0)
        t_fiber = mf * c * numa**2 / cores_per_socket

    # Atomic phase (Mttkrp): contended scatter updates.
    t_atomic = 0.0
    if kernel is Kernel.MTTKRP:
        if mode is not None:
            conflicts = features.contention_per_mode[mode]
        else:
            conflicts = float(np.mean(features.contention_per_mode))
        scale = max(1.0, np.log2(1.0 + conflicts) / 4.0)
        t_atomic = (
            features.nnz * r * C_ATOMIC * scale * numa / np.sqrt(platform.cores)
        )

    # Block phase: only HiCOO-Mttkrp iterates tensor blocks.
    t_block = 0.0
    if is_hicoo and kernel is Kernel.MTTKRP and features.nb > 0:
        t_block = features.nb * C_BLOCK / platform.cores

    total = t_mem + t_fiber + t_atomic + t_block
    return CpuTiming(
        total_s=total,
        memory_s=t_mem,
        fiber_s=t_fiber,
        atomic_s=t_atomic,
        block_s=t_block,
        effective_bw_gbs=bw,
        cache_resident=resident,
    )
