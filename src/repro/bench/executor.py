"""Resilient sharded suite execution on top of :class:`SuiteRunner`.

``SuiteRunner.run_dataset`` is a single in-process loop: one hung or
crashing case loses the whole sweep, and a long (tensor x kernel x
format x platform) sweep — the paper's Figures 4-7 — cannot be split
across processes or picked up after an interruption.  This module is the
execution layer that fixes that:

* the sweep is enumerated into a deterministic case list
  (:func:`repro.bench.runner.enumerate_cases`), each case identified by
  a stable fingerprint with an RNG seed derived from that fingerprint;
* cases partition into shards by ``index % shards``, so ``N`` parallel
  invocations cover the sweep disjointly;
* each case runs in an isolated worker subprocess
  (:mod:`repro.bench.worker`) under a per-case timeout; a hang is
  killed, a crash is contained;
* failed cases retry with exponential backoff, and cases that exhaust
  their retries are **quarantined** with their failure log instead of
  aborting the sweep;
* every completed :class:`~repro.metrics.perf.PerfRecord` is journaled
  to an append-only JSONL :class:`~repro.bench.runstore.RunStore`, so an
  interrupted run resumes by skipping already-fingerprinted cases and
  shard stores merge into one report.

Fault injection (``ExecutorConfig.faults``) drives the resilience tests
and the CI smoke: a matched case can be made to raise a genuine
:class:`~repro.parallel.chaos.ChaosError` from a real
:class:`~repro.parallel.chaos.ChaosBackend` region, hang, or hard-kill
its worker for the first ``n`` attempts, deterministically.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
import threading
import time
from dataclasses import dataclass, field

from repro.bench.runner import (
    RunnerConfig,
    SuiteRunner,
    SweepCase,
    TensorBundle,
    derive_case_seed,
    enumerate_cases,
)
from repro.bench.runstore import RunStore
from repro.metrics.perf import PerfRecord
from repro.obs.context import (
    TRACE_ENV,
    TraceContext,
    activate_context,
    current_context,
    derive_span_id,
    new_trace_id,
)
from repro.obs.log import get_logger
from repro.obs.registry import get_metrics
from repro.obs.tracer import CAT_CASE, Trace, current_tracer

_LOG = get_logger("repro.exec")

#: Failure kinds recorded in retry/quarantine logs.
FAIL_ERROR = "error"      # the case raised inside the worker
FAIL_TIMEOUT = "timeout"  # the worker exceeded the per-case timeout
FAIL_CRASH = "crash"      # the worker died without a verdict

ISOLATION_MODES = ("process", "inline")


class ExecutorError(RuntimeError):
    """Misconfiguration of the sweep executor (not a case failure)."""


@dataclass
class ExecutorConfig:
    """Resilience and sharding knobs of a sweep execution."""

    shards: int = 1
    shard_index: int = 0
    #: Wall-clock budget per case *attempt*, subprocess start included.
    timeout_s: float = 120.0
    #: Re-attempts after the first failure (0 = fail straight to
    #: quarantine).
    retries: int = 2
    backoff_base_s: float = 0.05
    backoff_max_s: float = 2.0
    #: Skip cases whose fingerprint already has a record in the store.
    resume: bool = False
    #: ``"process"`` runs each case in a worker subprocess (timeouts and
    #: crashes contained); ``"inline"`` runs in-process — fast, used by
    #: tests and trusted local sweeps, but a hang or hard crash is not
    #: contained.
    isolation: str = "process"
    #: Fault-injection table: case selector -> fault spec (see
    #: :func:`match_fault`).
    faults: dict = field(default_factory=dict)
    #: Concurrent case workers inside this shard.  ``1`` keeps the
    #: historical serial loop; ``> 1`` drives the shard's cases through
    #: the work-stealing pool (:mod:`repro.serve.scheduler`): each worker
    #: owns a deque and steals from a victim's tail when its own drains,
    #: so a straggling case never idles the other workers.  Records stay
    #: bit-identical to the serial run (case seeds derive from
    #: fingerprints, never from execution order).
    workers: int = 1
    #: Seed of the per-worker victim-selection RNGs of the stealing pool.
    steal_seed: int = 0

    def __post_init__(self):
        if self.shards < 1:
            raise ExecutorError(f"shards must be >= 1 (got {self.shards})")
        if not 0 <= self.shard_index < self.shards:
            raise ExecutorError(
                f"shard_index {self.shard_index} out of range for "
                f"{self.shards} shard(s)"
            )
        if self.isolation not in ISOLATION_MODES:
            raise ExecutorError(
                f"unknown isolation {self.isolation!r}; expected one of "
                f"{ISOLATION_MODES}"
            )
        if self.retries < 0:
            raise ExecutorError(f"retries must be >= 0 (got {self.retries})")
        if self.workers < 1:
            raise ExecutorError(f"workers must be >= 1 (got {self.workers})")


def match_fault(case: SweepCase, faults: "dict | None") -> dict:
    """The fault spec applying to ``case``, or ``{}``.

    Selectors, most specific first: the case fingerprint, then
    ``"tensor/kernel/fmt"``, then the tensor name, then ``"*"``.  A fault
    spec is a dict with any of ``fail_attempts`` (raise a ChaosError via
    a real ChaosBackend for attempts < n), ``hang_attempts``/``hang_s``
    (sleep — process isolation converts this into a timeout kill),
    ``kill_attempts`` (hard ``os._exit`` of the worker; process isolation
    only), and ``delay_s`` (sleep then *succeed* — an injected straggler,
    used to exercise work stealing without failing the case).
    """
    if not faults:
        return {}
    for key in (
        case.fingerprint,
        f"{case.tensor}/{case.kernel}/{case.fmt}",
        case.tensor,
        "*",
    ):
        spec = faults.get(key)
        if spec is not None:
            return dict(spec)
    return {}


def materialize_tensor(spec):
    """Build the case's COO tensor from its self-describing spec.

    Spec kinds: ``synthetic`` (Table 3 registry key), ``real`` (Table 2
    surrogate key), ``file`` (``.tns``/``.npz`` path), ``random``
    (uniform random shape/nnz/seed).
    """
    spec = dict(spec)
    kind = spec.get("kind")
    if kind == "synthetic":
        from repro.generate.registry import get_synthetic

        return get_synthetic(spec["key"]).generate(
            scale=float(spec.get("scale", 1000.0)), seed=int(spec.get("seed", 0))
        )
    if kind == "real":
        from repro.datasets.surrogate import make_surrogate

        return make_surrogate(
            spec["key"], scale=float(spec.get("scale", 1000.0)),
            seed=int(spec.get("seed", 0)),
        )
    if kind == "file":
        from repro.sptensor import load_npz, read_tns

        path = spec["path"]
        return load_npz(path) if str(path).endswith(".npz") else read_tns(path)
    if kind == "random":
        from repro.sptensor.coo import COOTensor

        return COOTensor.random(
            tuple(int(s) for s in spec["shape"]),
            int(spec["nnz"]),
            rng=int(spec.get("seed", 0)),
        )
    raise ExecutorError(f"unknown tensor spec kind {kind!r}")


def _inject_chaos_failure(case: SweepCase, attempt: int) -> None:
    """Raise a genuine ChaosError from a real chaos-backend region.

    The chaos seed mixes in the attempt number, mirroring how a real
    transient fault differs between attempts; the *decision* to fail is
    the fault spec's, so a flaky case deterministically fails its first
    ``fail_attempts`` attempts and then succeeds.
    """
    from repro.parallel import ChaosBackend, OpenMPBackend

    backend = ChaosBackend(
        OpenMPBackend(nthreads=2),
        seed=derive_case_seed(case.case_seed, "chaos", attempt),
        failure_rate=1.0,
    )
    try:
        backend.parallel_for(4, lambda lo, hi: None)
    finally:
        backend.shutdown()
    raise ExecutorError("chaos injection with failure_rate=1.0 did not raise")


def execute_case(
    case: SweepCase, attempt: int = 0, faults: "dict | None" = None
) -> PerfRecord:
    """Run one case to a :class:`PerfRecord` (the worker's core).

    Raises whatever the kernel raises — callers translate exceptions
    into retry/quarantine decisions.  Injected ``fail_attempts`` faults
    raise :class:`~repro.parallel.chaos.ChaosError` here, through a real
    chaos backend, so the retry path is exercised end to end.
    """
    fault = match_fault(case, faults)
    if attempt < int(fault.get("fail_attempts", 0)):
        _inject_chaos_failure(case, attempt)
    delay_s = float(fault.get("delay_s", 0.0))
    if delay_s > 0.0:
        time.sleep(delay_s)  # injected straggler: slow, not failing
    from repro.roofline.platform import get_platform

    config = case.runner_config()
    runner = SuiteRunner(get_platform(case.platform), config)
    tensor = materialize_tensor(case.tensor_spec)
    bundle = TensorBundle.prepare(case.tensor, tensor, config)
    return runner.run_kernel(bundle, case.kernel, case.fmt)


@dataclass
class ExecutorReport:
    """What one :meth:`SuiteExecutor.run` did, by fingerprint."""

    shards: int = 1
    shard_index: int = 0
    completed: list = field(default_factory=list)
    skipped: list = field(default_factory=list)
    quarantined: list = field(default_factory=list)
    #: fingerprint -> failure log of quarantined cases.
    failures: dict = field(default_factory=dict)
    retries: int = 0
    timeouts: int = 0
    crashes: int = 0
    #: Cases migrated between worker deques by the stealing pool
    #: (always 0 for the serial ``workers=1`` loop).
    steals: int = 0

    @property
    def total(self) -> int:
        return len(self.completed) + len(self.skipped) + len(self.quarantined)

    def render(self) -> str:
        lines = [
            f"shard {self.shard_index + 1}/{self.shards}: "
            f"{len(self.completed)} completed, {len(self.skipped)} skipped "
            f"(resume), {len(self.quarantined)} quarantined, "
            f"{self.retries} retries, {self.timeouts} timeouts, "
            f"{self.crashes} crashes, {self.steals} steals"
        ]
        for fp in self.quarantined:
            log = self.failures.get(fp, [])
            detail = "; ".join(
                f"attempt {f['attempt']}: [{f['kind']}] {f['detail']}" for f in log
            )
            lines.append(f"  quarantined {fp}: {detail}")
        return "\n".join(lines)


@dataclass
class CaseOutcome:
    """The terminal verdict of one case's retry state machine."""

    fingerprint: str
    completed: bool
    record: "PerfRecord | None" = None
    #: The journal line appended for this case (record or quarantine).
    line: "dict | None" = None
    failures: list = field(default_factory=list)
    retries: int = 0
    timeouts: int = 0
    crashes: int = 0
    #: Wall-clock of the successful attempt (0.0 when quarantined).
    elapsed_s: float = 0.0


class CaseRunner:
    """The per-case attempt/retry/quarantine state machine.

    One instance is shared by the serial :class:`SuiteExecutor` loop, the
    work-stealing pool (:mod:`repro.serve.scheduler`) and the serve
    daemon, so every execution surface retries, journals, traces and
    counts cases identically.  :meth:`run_case` is thread-safe: journal
    appends serialize through ``store_lock`` and the tracer/metrics
    substrates are slot/thread-sharded.
    """

    def __init__(self, config: "ExecutorConfig | None" = None, sleep=time.sleep):
        self.config = config or ExecutorConfig()
        self._sleep = sleep

    def backoff_s(self, attempt: int) -> float:
        """Exponential backoff before re-attempt ``attempt + 1``."""
        cfg = self.config
        return min(cfg.backoff_max_s, cfg.backoff_base_s * (2.0 ** attempt))

    def run_case(
        self, case: SweepCase, store: RunStore, store_lock=None
    ) -> CaseOutcome:
        """Run one case to its terminal verdict, journaling the outcome."""
        cfg = self.config
        tracer = current_tracer()
        metrics = get_metrics()
        # An active trace context (daemon request, traced sweep) links
        # this case's spans into the distributed trace; with an enabled
        # tracer but no context, synthesize one so worker subprocesses
        # still correlate back to the parent trace.
        ctx = current_context()
        if ctx is None and tracer.enabled:
            ctx = TraceContext(
                trace_id=getattr(tracer, "trace_id", "") or new_trace_id()
            )
        labels = {
            "kernel": case.kernel, "fmt": case.fmt, "platform": case.platform,
        }
        outcome = CaseOutcome(fingerprint=case.fingerprint, completed=False)
        for attempt in range(cfg.retries + 1):
            t0 = time.perf_counter()
            span_attrs = dict(
                fingerprint=case.fingerprint, tensor=case.tensor,
                kernel=case.kernel, fmt=case.fmt, platform=case.platform,
                attempt=attempt, isolation=cfg.isolation,
            )
            attempt_ctx = None
            if ctx is not None:
                span_id = derive_span_id(
                    ctx.trace_id, case.fingerprint, attempt
                )
                span_attrs["span_id"] = span_id
                attempt_ctx = ctx.child(span_id)
            with tracer.span("case", cat=CAT_CASE, **span_attrs):
                record, failure = self.attempt(case, attempt, attempt_ctx)
            elapsed = time.perf_counter() - t0
            if record is not None:
                with store_lock or _NULL_LOCK:
                    line = store.append_record(case, record, attempt, elapsed)
                outcome.completed = True
                outcome.record = record
                outcome.line = line
                outcome.elapsed_s = elapsed
                tracer.count("exec.completed")
                metrics.inc("exec.completed", **labels)
                metrics.observe("exec.case_seconds", elapsed, **labels)
                _LOG.debug(
                    "case.completed", fingerprint=case.fingerprint,
                    kernel=case.kernel, fmt=case.fmt, attempt=attempt,
                    elapsed_s=round(elapsed, 6),
                )
                return outcome
            outcome.failures.append(failure)
            _LOG.debug(
                "case.failed", fingerprint=case.fingerprint,
                kind=failure["kind"], attempt=attempt,
                detail=failure["detail"],
            )
            if failure["kind"] == FAIL_TIMEOUT:
                outcome.timeouts += 1
                tracer.count("exec.timeouts")
                metrics.inc("exec.timeouts", **labels)
            elif failure["kind"] == FAIL_CRASH:
                outcome.crashes += 1
                tracer.count("exec.crashes")
                metrics.inc("exec.crashes", **labels)
            if attempt < cfg.retries:
                outcome.retries += 1
                tracer.count("exec.retries")
                metrics.inc("exec.retries", **labels)
                self._sleep(self.backoff_s(attempt))
        with store_lock or _NULL_LOCK:
            outcome.line = store.append_quarantine(case, outcome.failures)
        tracer.count("exec.quarantined")
        metrics.inc("exec.quarantined", **labels)
        _LOG.warn(
            "case.quarantined", fingerprint=case.fingerprint,
            kernel=case.kernel, fmt=case.fmt,
            attempts=len(outcome.failures),
        )
        return outcome

    # ------------------------------------------------------------------ #
    def attempt(self, case: SweepCase, attempt: int, context=None):
        """One attempt -> ``(record, None)`` or ``(None, failure_dict)``.

        ``context`` (a :class:`TraceContext` or ``None``) scopes the
        attempt into the distributed trace: inline attempts activate it
        on this thread, process attempts inject it into the worker so
        the worker's spans/metrics come home in the verdict.
        """
        if self.config.isolation == "inline":
            return self._inline_attempt(case, attempt, context)
        return self._process_attempt(case, attempt, context)

    def _inline_attempt(self, case: SweepCase, attempt: int, context=None):
        try:
            if context is not None:
                with activate_context(context):
                    return execute_case(case, attempt, self.config.faults), None
            return execute_case(case, attempt, self.config.faults), None
        except Exception as exc:  # noqa: BLE001 - converted into a failure
            return None, {
                "kind": FAIL_ERROR,
                "attempt": attempt,
                "detail": f"{type(exc).__name__}: {exc}",
            }

    def _process_attempt(self, case: SweepCase, attempt: int, context=None):
        import repro

        cfg = self.config
        with tempfile.TemporaryDirectory(prefix="repro-sweep-") as tmp:
            case_path = os.path.join(tmp, "case.json")
            verdict_path = os.path.join(tmp, "verdict.json")
            payload = {
                "case": case.to_dict(),
                "attempt": attempt,
                "faults": cfg.faults,
            }
            if context is not None:
                payload["trace"] = context.to_dict()
            with open(case_path, "w") as f:
                json.dump(payload, f)
            # The worker must import this very repro package regardless of
            # how the parent found it.
            pkg_root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
            env = dict(os.environ)
            env["PYTHONPATH"] = pkg_root + (
                os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
            )
            if context is not None:
                env[TRACE_ENV] = context.to_env()
            proc = subprocess.Popen(
                [sys.executable, "-m", "repro.bench.worker", case_path, verdict_path],
                stdout=subprocess.PIPE,
                stderr=subprocess.PIPE,
                env=env,
                text=True,
            )
            try:
                _, stderr = proc.communicate(timeout=cfg.timeout_s)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.communicate()
                return None, {
                    "kind": FAIL_TIMEOUT,
                    "attempt": attempt,
                    "detail": f"worker exceeded {cfg.timeout_s:g}s; killed",
                }
            if proc.returncode != 0 or not os.path.exists(verdict_path):
                tail = (stderr or "").strip()[-400:]
                return None, {
                    "kind": FAIL_CRASH,
                    "attempt": attempt,
                    "detail": f"worker exit {proc.returncode} without verdict"
                    + (f": {tail}" if tail else ""),
                }
            with open(verdict_path) as f:
                verdict = json.load(f)
        self._absorb_verdict(verdict)
        if verdict.get("ok"):
            return PerfRecord.from_dict(verdict["record"]), None
        return None, {
            "kind": FAIL_ERROR,
            "attempt": attempt,
            "detail": str(verdict.get("error", "worker reported failure")),
        }

    def _absorb_verdict(self, verdict: dict) -> None:
        """Fold worker-subprocess telemetry into this process.

        A traced worker ships its frozen span buffer and metrics dump in
        the verdict (see :mod:`repro.bench.worker`); adopting them here
        is what closes the telemetry hole where subprocess ``exec.*``
        counters and kernel spans vanished at the process boundary.
        Malformed telemetry is logged and dropped — it must never fail
        the case that carried it.
        """
        data = verdict.get("trace")
        if data:
            tracer = current_tracer()
            if tracer.enabled:
                try:
                    tracer.adopt(Trace.from_dict(data))
                except (AttributeError, KeyError, TypeError, ValueError) as exc:
                    _LOG.warn("verdict.trace_malformed", error=str(exc))
        dump = verdict.get("metrics")
        if dump:
            try:
                get_metrics().absorb_dict(dump)
            except (AttributeError, KeyError, TypeError, ValueError) as exc:
                _LOG.warn("verdict.metrics_malformed", error=str(exc))


class _NullLock:
    """Lock stand-in for single-threaded callers."""

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


_NULL_LOCK = _NullLock()


class SuiteExecutor:
    """Runs a shard of an enumerated sweep against a run store."""

    def __init__(
        self,
        cases: "list[SweepCase]",
        store: RunStore,
        config: "ExecutorConfig | None" = None,
        sleep=time.sleep,
    ):
        self.cases = list(cases)
        self.store = store
        self.config = config or ExecutorConfig()
        self._sleep = sleep
        self.runner = CaseRunner(self.config, sleep=sleep)

    # ------------------------------------------------------------------ #
    def shard_cases(self) -> "list[SweepCase]":
        """This shard's slice of the deterministic case list."""
        cfg = self.config
        return [
            c for i, c in enumerate(self.cases) if i % cfg.shards == cfg.shard_index
        ]

    def run(self) -> ExecutorReport:
        """Execute the shard: skip, attempt/retry, journal, quarantine.

        A failing case never aborts the sweep — it retries with
        exponential backoff and lands in quarantine (journaled with its
        failure log) once retries are exhausted.  ``KeyboardInterrupt``
        does propagate; the journal keeps every case completed so far,
        which is exactly what ``resume`` picks up.  With
        ``config.workers > 1`` the shard's cases run on the work-stealing
        pool instead of the serial loop; the journal content is identical
        (only line order varies with the schedule).
        """
        cfg = self.config
        tracer = current_tracer()
        # Tracer counters cover one traced invocation; the process-global
        # registry accumulates across the whole sweep with per-case labels
        # (dumped by ``repro metrics`` / scraped as Prometheus text).
        metrics = get_metrics()
        done = (
            self.store.load().completed()
            if cfg.resume and self.store.exists()
            else set()
        )
        report = ExecutorReport(shards=cfg.shards, shard_index=cfg.shard_index)
        pending = []
        for case in self.shard_cases():
            if case.fingerprint in done:
                report.skipped.append(case.fingerprint)
                tracer.count("exec.skipped")
                metrics.inc(
                    "exec.skipped", kernel=case.kernel, fmt=case.fmt,
                    platform=case.platform,
                )
                continue
            pending.append(case)
        if cfg.workers > 1 and len(pending) > 1:
            self._run_stealing(pending, report)
        else:
            for case in pending:
                fold_outcome(report, self.runner.run_case(case, self.store))
        return report

    def backoff_s(self, attempt: int) -> float:
        """Exponential backoff before re-attempt ``attempt + 1``."""
        return self.runner.backoff_s(attempt)

    # ------------------------------------------------------------------ #
    def _run_stealing(self, pending: "list[SweepCase]", report: ExecutorReport):
        """Drive the pending cases through the work-stealing pool."""
        from repro.serve.scheduler import StealScheduler

        cfg = self.config
        store_lock = threading.Lock()
        report_lock = threading.Lock()

        def run_case(case):
            outcome = self.runner.run_case(case, self.store, store_lock=store_lock)
            with report_lock:
                fold_outcome(report, outcome)
            return outcome.completed

        scheduler = StealScheduler(
            run_case,
            workers=min(cfg.workers, len(pending)),
            steal_seed=cfg.steal_seed,
        )
        scheduler.start()
        try:
            scheduler.submit(pending).wait()
        finally:
            scheduler.shutdown()
        report.steals = scheduler.steals


def fold_outcome(report: ExecutorReport, outcome: CaseOutcome) -> None:
    """Aggregate one case's terminal verdict into an executor report."""
    report.retries += outcome.retries
    report.timeouts += outcome.timeouts
    report.crashes += outcome.crashes
    if outcome.completed:
        report.completed.append(outcome.fingerprint)
    else:
        report.quarantined.append(outcome.fingerprint)
        report.failures[outcome.fingerprint] = outcome.failures


# --------------------------------------------------------------------- #
# Sweep assembly helpers (CLI entry points)
# --------------------------------------------------------------------- #
def dataset_case_specs(
    dataset: str = "both",
    scale: float = 1000.0,
    seed: int = 0,
    keys=None,
) -> dict:
    """Self-describing tensor specs for the paper datasets.

    Mirrors :func:`repro.bench.experiments._dataset` but *describes* the
    tensors instead of materializing them, so workers regenerate each one
    on demand.  Generation seeds derive from ``(seed, registry key)``,
    never from enumeration position.
    """
    if dataset not in ("real", "synthetic", "both"):
        raise ExecutorError(f"unknown dataset kind {dataset!r}")
    wanted = set(keys) if keys else None
    specs: dict = {}
    if dataset in ("real", "both"):
        from repro.datasets.registry import REAL_TENSORS

        for info in REAL_TENSORS:
            if wanted and info.key not in wanted and info.name not in wanted:
                continue
            specs[info.name] = {
                "kind": "real",
                "key": info.key,
                "scale": scale,
                "seed": derive_case_seed(seed, "tensor", info.key),
            }
    if dataset in ("synthetic", "both"):
        from repro.generate.registry import SYNTHETIC_TENSORS

        for cfg in SYNTHETIC_TENSORS:
            if wanted and cfg.key not in wanted and cfg.name not in wanted:
                continue
            specs[cfg.name] = {
                "kind": "synthetic",
                "key": cfg.name,
                "scale": scale,
                "seed": derive_case_seed(seed, "tensor", cfg.key),
            }
    if wanted and not specs:
        raise ExecutorError(f"no tensors matched keys {sorted(wanted)}")
    return specs


def build_sweep_cases(
    dataset: str = "both",
    scale: float = 1000.0,
    seed: int = 0,
    keys=None,
    platforms=("Bluesky",),
    config: "RunnerConfig | None" = None,
) -> "list[SweepCase]":
    """Enumerate the full sweep for the CLI (and the CI smoke)."""
    if config is None:
        config = RunnerConfig(measure_host=False, cache_scale=scale, seed=seed)
    specs = dataset_case_specs(dataset, scale=scale, seed=seed, keys=keys)
    return enumerate_cases(specs, config, platforms=platforms)
