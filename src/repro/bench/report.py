"""Fold a run store into the paper's Observation-style tables.

The PASTA paper's experimental payoff is five qualitative Observations
(Sec. 5.2) — performance diversity, cache effects above the roofline,
low efficiency on irregular kernels, format effects, and memory-bound
behavior everywhere.  ``repro report`` reproduces those as tables over
*any* run store, so a sweep journal turns into the paper-style analysis
without re-running anything:

* **Observation 1** — per-platform, per-kernel achieved-GFLOPS ranges
  (performance diversity across tensors and formats);
* **Observation 2** — the share of cases above their roofline bound
  (cache-resident working sets);
* **Observation 3** — bound-fraction distributions per (kernel, fmt):
  how far below the accurate-OI roofline each group sits, from the
  ``extra["roofline"]`` attribution block;
* **Observation 4** — HiCOO vs COO per-kernel geomean time ratios
  (format effects, paired per tensor);
* **Observation 5** — memory- vs compute-bound census and, where host
  times exist, sustained effective DRAM bandwidth against the ceiling.

Output renders as text, GitHub markdown, or JSON.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.metrics.perf import PerfRecord
from repro.metrics.stats import geomean, gflops_range, group_by


@dataclass(frozen=True)
class Section:
    """One Observation table."""

    obs: str
    title: str
    headers: tuple
    rows: tuple
    note: str = ""

    def as_dict(self) -> dict:
        return {
            "obs": self.obs,
            "title": self.title,
            "headers": list(self.headers),
            "rows": [list(r) for r in self.rows],
            "note": self.note,
        }


@dataclass(frozen=True)
class ObservationReport:
    """The full Observation 1-5 report over one record set."""

    nrecords: int
    platforms: tuple
    sections: tuple
    meta: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "nrecords": self.nrecords,
            "platforms": list(self.platforms),
            "sections": [s.as_dict() for s in self.sections],
        }

    def render(self, fmt: str = "text") -> str:
        if fmt == "json":
            return json.dumps(self.as_dict(), indent=2, sort_keys=True)
        out = [
            f"observation report over {self.nrecords} records "
            f"({', '.join(self.platforms)})"
        ]
        for s in self.sections:
            out.append("")
            if fmt == "markdown":
                out.append(f"## Observation {s.obs} — {s.title}")
                out.append("")
                out.append("| " + " | ".join(s.headers) + " |")
                out.append("|" + "|".join(["---"] * len(s.headers)) + "|")
                for row in s.rows:
                    out.append("| " + " | ".join(str(c) for c in row) + " |")
            else:
                out.append(f"Observation {s.obs} — {s.title}")
                widths = [
                    max(len(str(h)), *(len(str(r[i])) for r in s.rows))
                    if s.rows else len(str(h))
                    for i, h in enumerate(s.headers)
                ]
                out.append(
                    "  " + "  ".join(
                        str(h).ljust(w) for h, w in zip(s.headers, widths)
                    )
                )
                for row in s.rows:
                    out.append(
                        "  " + "  ".join(
                            str(c).ljust(w) for c, w in zip(row, widths)
                        )
                    )
            if s.note:
                out.append(f"  ({s.note})")
        return "\n".join(out)


def _bound_fraction(rec: PerfRecord):
    """The attribution block's bound fraction (efficiency as fallback)."""
    roofline = rec.extra.get("roofline")
    if isinstance(roofline, dict):
        value = roofline.get("bound_fraction")
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            return float(value)
    return float(rec.efficiency)


def _boundedness(rec: PerfRecord):
    roofline = rec.extra.get("roofline")
    if isinstance(roofline, dict):
        return roofline.get("boundedness")
    return None


def _fmt_range(span) -> str:
    if span is None:
        return "no data"
    lo, hi = span
    return f"{lo:.3g}..{hi:.3g}"


def _obs1(records) -> Section:
    rows = []
    for (platform, kernel), recs in sorted(
        group_by(records, "platform", "kernel").items()
    ):
        span = gflops_range(recs)
        spread = ""
        if span is not None and span[0] > 0:
            spread = f"{span[1] / span[0]:.1f}x"
        rows.append((platform, kernel, len(recs), _fmt_range(span), spread))
    return Section(
        obs="1",
        title="performance diversity (achieved GFLOPS ranges)",
        headers=("platform", "kernel", "cases", "gflops min..max", "spread"),
        rows=tuple(rows),
    )


def _obs2(records) -> Section:
    rows = []
    for (platform,), recs in sorted(group_by(records, "platform").items()):
        above = [r for r in recs if _bound_fraction(r) > 1.0]
        rows.append(
            (
                platform,
                len(recs),
                len(above),
                f"{len(above) / len(recs):.1%}" if recs else "no data",
            )
        )
    return Section(
        obs="2",
        title="cases above the roofline bound (cache-resident sets)",
        headers=("platform", "cases", "above bound", "fraction"),
        rows=tuple(rows),
        note="bound fraction > 1 means the working set was served from cache",
    )


def _obs3(records) -> Section:
    rows = []
    for (platform, kernel, fmt), recs in sorted(
        group_by(records, "platform", "kernel", "fmt").items()
    ):
        fracs = sorted(_bound_fraction(r) for r in recs)
        if not fracs:
            continue
        mid = fracs[len(fracs) // 2]
        rows.append(
            (
                platform,
                kernel,
                fmt,
                len(fracs),
                f"{min(fracs):.3f}",
                f"{mid:.3f}",
                f"{max(fracs):.3f}",
            )
        )
    return Section(
        obs="3",
        title="roofline bound-fraction distribution per (kernel, fmt)",
        headers=(
            "platform", "kernel", "fmt", "cases",
            "bound_frac min", "median", "max",
        ),
        rows=tuple(rows),
        note="1.0 == at the accurate-OI roofline bound",
    )


def _obs4(records) -> Section:
    rows = []
    for (platform, kernel), recs in sorted(
        group_by(records, "platform", "kernel").items()
    ):
        by_fmt: dict[str, dict] = {}
        for r in recs:
            by_fmt.setdefault(r.fmt, {})[r.tensor] = r
        coo, hicoo = by_fmt.get("coo", {}), by_fmt.get("hicoo", {})
        ratios = []
        for tensor in sorted(set(coo) & set(hicoo)):
            a, b = coo[tensor].seconds, hicoo[tensor].seconds
            if a > 0 and b > 0:
                ratios.append(a / b)
        if not ratios:
            continue
        gm = geomean(ratios)
        rows.append(
            (
                platform,
                kernel,
                len(ratios),
                f"{gm:.3f}" if gm is not None else "no data",
                f"{min(ratios):.3f}..{max(ratios):.3f}",
            )
        )
    return Section(
        obs="4",
        title="HiCOO vs COO (geomean COO/HiCOO time ratio, paired per tensor)",
        headers=("platform", "kernel", "pairs", "geomean speedup", "range"),
        rows=tuple(rows),
        note="> 1 means HiCOO is faster on the modeled platform time",
    )


def _obs5(records) -> Section:
    rows = []
    for (platform,), recs in sorted(group_by(records, "platform").items()):
        memory = sum(1 for r in recs if _boundedness(r) == "memory")
        compute = sum(1 for r in recs if _boundedness(r) == "compute")
        unattributed = len(recs) - memory - compute
        bw = []
        for r in recs:
            roofline = r.extra.get("roofline")
            if isinstance(roofline, dict):
                eff = roofline.get("effective_bw_gbs") or 0.0
                ceiling = roofline.get("bw_ceiling_gbs") or 0.0
                if eff > 0 and ceiling > 0:
                    bw.append(eff / ceiling)
        rows.append(
            (
                platform,
                memory,
                compute,
                unattributed,
                f"{sum(bw) / len(bw):.1%}" if bw else "unmeasured",
            )
        )
    return Section(
        obs="5",
        title="boundedness census and sustained DRAM bandwidth",
        headers=(
            "platform", "memory-bound", "compute-bound",
            "unattributed", "mean eff-bw / ceiling",
        ),
        rows=tuple(rows),
        note="bandwidth column needs host-measured runs (--measure-host)",
    )


def build_report(records) -> ObservationReport:
    """The Observation 1-5 tables over a list of :class:`PerfRecord`."""
    records = list(records)
    platforms = tuple(sorted({r.platform for r in records}))
    sections = tuple(
        fn(records) for fn in (_obs1, _obs2, _obs3, _obs4, _obs5)
    )
    return ObservationReport(
        nrecords=len(records),
        platforms=platforms,
        sections=sections,
    )


def report_from_store(path) -> ObservationReport:
    """Load a run-store journal and build its observation report."""
    from repro.bench.runstore import RunStore

    state = RunStore(path).load()
    return build_report(state.perf_records())
